//! The constraint engine: compiled constraints plus incremental region
//! aggregates.
//!
//! Regions are added to, removed from, and merged constantly during the
//! construction and local-search phases. Recomputing every aggregate from
//! scratch per check would be O(region size) each time; instead every region
//! carries a [`RegionAgg`] maintaining
//!
//! * the area count (COUNT),
//! * one running sum per attribute used by AVG/SUM constraints, and
//! * one counted multiset per attribute used by MIN/MAX constraints
//!
//! so each constraint check is O(1) or O(log k). The naive recomputation
//! path is kept (see [`ConstraintEngine::compute_fresh`]) both as a test
//! oracle and as the ablation baseline benchmarked in `emp-bench`.

use crate::attr::AttributeTable;
use crate::constraint::{Aggregate, Constraint, ConstraintSet};
use crate::error::EmpError;
use crate::instance::EmpInstance;
use crate::value::Multiset;
use emp_obs::{CounterKind, Counters};

/// The telemetry counter tracking checks of this aggregate kind.
pub(crate) fn check_counter(agg: Aggregate) -> CounterKind {
    match agg {
        Aggregate::Min => CounterKind::ChecksMin,
        Aggregate::Max => CounterKind::ChecksMax,
        Aggregate::Avg => CounterKind::ChecksAvg,
        Aggregate::Sum => CounterKind::ChecksSum,
        Aggregate::Count => CounterKind::ChecksCount,
    }
}

/// A constraint resolved against the attribute table.
#[derive(Clone, Debug)]
pub struct CompiledConstraint {
    /// Aggregate function.
    pub aggregate: Aggregate,
    /// Column index (`usize::MAX` for COUNT).
    pub col: usize,
    /// Inclusive lower bound.
    pub low: f64,
    /// Inclusive upper bound.
    pub high: f64,
    /// Index into [`RegionAgg::sums`] (AVG/SUM) or [`RegionAgg::multisets`]
    /// (MIN/MAX); unused for COUNT.
    pub slot: usize,
}

impl CompiledConstraint {
    /// Whether `v` is within the constraint's bounds.
    #[inline]
    pub fn contains(&self, v: f64) -> bool {
        self.low <= v && v <= self.high
    }
}

/// Incrementally-maintained aggregates for one region.
#[derive(Clone, Debug, Default)]
pub struct RegionAgg {
    /// Number of areas in the region.
    pub count: usize,
    /// Running sums, one per engine sum-slot.
    pub sums: Vec<f64>,
    /// Counted multisets, one per engine extrema-slot.
    pub multisets: Vec<Multiset>,
}

/// Compiled constraint set bound to an instance's attribute table.
pub struct ConstraintEngine<'a> {
    instance: &'a EmpInstance,
    constraints: Vec<CompiledConstraint>,
    /// Unique columns needing running sums (for AVG and SUM constraints).
    sum_cols: Vec<usize>,
    /// Unique columns needing multisets (for MIN and MAX constraints).
    extrema_cols: Vec<usize>,
    /// Indices of constraints by aggregate, for phase-specific iteration.
    by_aggregate: [Vec<usize>; 5],
    /// Per-constraint `(min, max)` of [`ConstraintEngine::area_value`] over
    /// every area — the extreme single-area contribution a move can add to
    /// or subtract from a region aggregate. `(1, 1)` for COUNT. Columns
    /// containing NaN (or an empty instance) store `(NaN, NaN)`, which makes
    /// every slack-prune comparison false and disables pruning for that
    /// constraint (the per-move checks stay authoritative).
    value_bounds: Vec<(f64, f64)>,
}

fn agg_index(a: Aggregate) -> usize {
    match a {
        Aggregate::Min => 0,
        Aggregate::Max => 1,
        Aggregate::Avg => 2,
        Aggregate::Sum => 3,
        Aggregate::Count => 4,
    }
}

impl<'a> ConstraintEngine<'a> {
    /// Compiles `set` against the instance, validating attribute names.
    pub fn compile(instance: &'a EmpInstance, set: &ConstraintSet) -> Result<Self, EmpError> {
        let attrs = instance.attributes();
        let mut constraints = Vec::with_capacity(set.len());
        let mut sum_cols: Vec<usize> = Vec::new();
        let mut extrema_cols: Vec<usize> = Vec::new();
        let mut by_aggregate: [Vec<usize>; 5] = Default::default();

        for (i, c) in set.constraints().iter().enumerate() {
            let compiled = Self::compile_one(attrs, c, &mut sum_cols, &mut extrema_cols)?;
            by_aggregate[agg_index(c.aggregate)].push(i);
            constraints.push(compiled);
        }
        let n = attrs.rows();
        let value_bounds = constraints
            .iter()
            .map(|c| {
                if c.aggregate == Aggregate::Count {
                    return (1.0, 1.0);
                }
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for area in 0..n {
                    let v = attrs.value(c.col, area);
                    if v.is_nan() {
                        // `f64::min`/`max` silently ignore NaN, but the move
                        // hypotheticals do not — disable pruning entirely.
                        return (f64::NAN, f64::NAN);
                    }
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                if n == 0 {
                    (f64::NAN, f64::NAN)
                } else {
                    (lo, hi)
                }
            })
            .collect();
        Ok(ConstraintEngine {
            instance,
            constraints,
            sum_cols,
            extrema_cols,
            by_aggregate,
            value_bounds,
        })
    }

    fn compile_one(
        attrs: &AttributeTable,
        c: &Constraint,
        sum_cols: &mut Vec<usize>,
        extrema_cols: &mut Vec<usize>,
    ) -> Result<CompiledConstraint, EmpError> {
        let (col, slot) =
            match c.aggregate {
                Aggregate::Count => (usize::MAX, usize::MAX),
                Aggregate::Avg | Aggregate::Sum => {
                    let col = attrs.column_index(&c.attribute).ok_or_else(|| {
                        EmpError::UnknownAttribute {
                            name: c.attribute.clone(),
                        }
                    })?;
                    let slot = match sum_cols.iter().position(|&x| x == col) {
                        Some(s) => s,
                        None => {
                            sum_cols.push(col);
                            sum_cols.len() - 1
                        }
                    };
                    (col, slot)
                }
                Aggregate::Min | Aggregate::Max => {
                    let col = attrs.column_index(&c.attribute).ok_or_else(|| {
                        EmpError::UnknownAttribute {
                            name: c.attribute.clone(),
                        }
                    })?;
                    let slot = match extrema_cols.iter().position(|&x| x == col) {
                        Some(s) => s,
                        None => {
                            extrema_cols.push(col);
                            extrema_cols.len() - 1
                        }
                    };
                    (col, slot)
                }
            };
        Ok(CompiledConstraint {
            aggregate: c.aggregate,
            col,
            low: c.low,
            high: c.high,
            slot,
        })
    }

    /// The instance the engine is bound to.
    #[inline]
    pub fn instance(&self) -> &'a EmpInstance {
        self.instance
    }

    /// The compiled constraints, in input order.
    #[inline]
    pub fn constraints(&self) -> &[CompiledConstraint] {
        &self.constraints
    }

    /// Indices of constraints with the given aggregate.
    #[inline]
    pub fn indices_of(&self, aggregate: Aggregate) -> &[usize] {
        &self.by_aggregate[agg_index(aggregate)]
    }

    /// Whether the set contains a constraint with the given aggregate.
    #[inline]
    pub fn has(&self, aggregate: Aggregate) -> bool {
        !self.indices_of(aggregate).is_empty()
    }

    /// Per-constraint global `(min, max)` single-area contribution; `(NaN,
    /// NaN)` when pruning is disabled for that constraint (NaN-valued
    /// column or empty instance). Indexed like [`ConstraintEngine::constraints`].
    #[inline]
    pub fn value_bounds(&self, ci: usize) -> (f64, f64) {
        self.value_bounds[ci]
    }

    /// One area's value for the constraint's column (1 for COUNT).
    #[inline]
    pub fn area_value(&self, ci: usize, area: u32) -> f64 {
        let c = &self.constraints[ci];
        if c.aggregate == Aggregate::Count {
            1.0
        } else {
            self.instance.attributes().value(c.col, area as usize)
        }
    }

    /// A fresh, empty aggregate with correctly-sized slots.
    pub fn empty_agg(&self) -> RegionAgg {
        RegionAgg {
            count: 0,
            sums: vec![0.0; self.sum_cols.len()],
            multisets: vec![Multiset::new(); self.extrema_cols.len()],
        }
    }

    /// Adds one area to the aggregate.
    pub fn add_area(&self, agg: &mut RegionAgg, area: u32) {
        let attrs = self.instance.attributes();
        agg.count += 1;
        for (i, &col) in self.sum_cols.iter().enumerate() {
            agg.sums[i] += attrs.value(col, area as usize);
        }
        for (i, &col) in self.extrema_cols.iter().enumerate() {
            agg.multisets[i].insert(attrs.value(col, area as usize));
        }
    }

    /// Removes one area from the aggregate.
    pub fn remove_area(&self, agg: &mut RegionAgg, area: u32) {
        debug_assert!(agg.count > 0);
        let attrs = self.instance.attributes();
        agg.count -= 1;
        for (i, &col) in self.sum_cols.iter().enumerate() {
            agg.sums[i] -= attrs.value(col, area as usize);
        }
        for (i, &col) in self.extrema_cols.iter().enumerate() {
            agg.multisets[i].remove(attrs.value(col, area as usize));
        }
    }

    /// Merges `other` into `agg`.
    pub fn absorb(&self, agg: &mut RegionAgg, other: &RegionAgg) {
        agg.count += other.count;
        for (a, b) in agg.sums.iter_mut().zip(&other.sums) {
            *a += b;
        }
        for (a, b) in agg.multisets.iter_mut().zip(&other.multisets) {
            a.absorb(b);
        }
    }

    /// Builds the aggregate for a member list from scratch (oracle/ablation).
    pub fn compute_fresh(&self, members: &[u32]) -> RegionAgg {
        let mut agg = self.empty_agg();
        for &a in members {
            self.add_area(&mut agg, a);
        }
        agg
    }

    /// The aggregate value of constraint `ci` for a (non-empty) region.
    pub fn value(&self, agg: &RegionAgg, ci: usize) -> f64 {
        let c = &self.constraints[ci];
        match c.aggregate {
            Aggregate::Count => agg.count as f64,
            Aggregate::Sum => agg.sums[c.slot],
            Aggregate::Avg => {
                if agg.count == 0 {
                    f64::NAN
                } else {
                    agg.sums[c.slot] / agg.count as f64
                }
            }
            Aggregate::Min => agg.multisets[c.slot].min().unwrap_or(f64::NAN),
            Aggregate::Max => agg.multisets[c.slot].max().unwrap_or(f64::NAN),
        }
    }

    /// Whether constraint `ci` is satisfied.
    #[inline]
    pub fn satisfied(&self, agg: &RegionAgg, ci: usize) -> bool {
        let v = self.value(agg, ci);
        !v.is_nan() && self.constraints[ci].contains(v)
    }

    /// Whether every constraint is satisfied.
    pub fn satisfies_all(&self, agg: &RegionAgg) -> bool {
        (0..self.constraints.len()).all(|ci| self.satisfied(agg, ci))
    }

    /// [`ConstraintEngine::satisfied`], also bumping the per-aggregate
    /// check counter (telemetry).
    #[inline]
    pub fn satisfied_counted(&self, agg: &RegionAgg, ci: usize, counters: &mut Counters) -> bool {
        counters.inc(check_counter(self.constraints[ci].aggregate));
        self.satisfied(agg, ci)
    }

    /// [`ConstraintEngine::satisfies_all`] with per-aggregate check
    /// counting. Short-circuits like the uncounted variant, so only the
    /// checks actually performed are counted.
    pub fn satisfies_all_counted(&self, agg: &RegionAgg, counters: &mut Counters) -> bool {
        (0..self.constraints.len()).all(|ci| self.satisfied_counted(agg, ci, counters))
    }

    /// Indices of the violated constraints.
    pub fn violations(&self, agg: &RegionAgg) -> Vec<usize> {
        (0..self.constraints.len())
            .filter(|&ci| !self.satisfied(agg, ci))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emp_graph::ContiguityGraph;

    fn instance() -> EmpInstance {
        // 5-area path; POP = [10, 20, 30, 40, 50], EMP = [1, 2, 3, 4, 5].
        let graph = ContiguityGraph::lattice(5, 1);
        let mut attrs = AttributeTable::new(5);
        attrs
            .push_column("POP", vec![10.0, 20.0, 30.0, 40.0, 50.0])
            .unwrap();
        attrs
            .push_column("EMP", vec![1.0, 2.0, 3.0, 4.0, 5.0])
            .unwrap();
        EmpInstance::new(graph, attrs, "POP").unwrap()
    }

    fn full_set() -> ConstraintSet {
        ConstraintSet::new()
            .with(Constraint::min("EMP", 1.0, 3.0).unwrap())
            .with(Constraint::max("EMP", 4.0, 5.0).unwrap())
            .with(Constraint::avg("POP", 20.0, 40.0).unwrap())
            .with(Constraint::sum("POP", 50.0, f64::INFINITY).unwrap())
            .with(Constraint::count(2.0, 5.0).unwrap())
    }

    #[test]
    fn compile_validates_attributes() {
        let inst = instance();
        let bad = ConstraintSet::new().with(Constraint::sum("NOPE", 0.0, 1.0).unwrap());
        assert!(matches!(
            ConstraintEngine::compile(&inst, &bad),
            Err(EmpError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn slots_are_shared_per_column() {
        let inst = instance();
        let set = ConstraintSet::new()
            .with(Constraint::avg("POP", 0.0, 100.0).unwrap())
            .with(Constraint::sum("POP", 0.0, f64::INFINITY).unwrap())
            .with(Constraint::min("EMP", 0.0, 9.0).unwrap())
            .with(Constraint::max("EMP", 0.0, 9.0).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let agg = eng.empty_agg();
        assert_eq!(agg.sums.len(), 1); // POP shared by AVG and SUM
        assert_eq!(agg.multisets.len(), 1); // EMP shared by MIN and MAX
    }

    #[test]
    fn incremental_values() {
        let inst = instance();
        let set = full_set();
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut agg = eng.empty_agg();
        eng.add_area(&mut agg, 0); // POP 10, EMP 1
        eng.add_area(&mut agg, 4); // POP 50, EMP 5
        assert_eq!(eng.value(&agg, 0), 1.0); // MIN(EMP)
        assert_eq!(eng.value(&agg, 1), 5.0); // MAX(EMP)
        assert_eq!(eng.value(&agg, 2), 30.0); // AVG(POP)
        assert_eq!(eng.value(&agg, 3), 60.0); // SUM(POP)
        assert_eq!(eng.value(&agg, 4), 2.0); // COUNT
        assert!(eng.satisfies_all(&agg));

        eng.remove_area(&mut agg, 4);
        assert_eq!(eng.value(&agg, 1), 1.0); // MAX now 1
        assert!(!eng.satisfied(&agg, 1));
        // Remaining region {0}: MAX=1, AVG=10, SUM=10, COUNT=1 all violate.
        assert_eq!(eng.violations(&agg), vec![1, 2, 3, 4]);
    }

    #[test]
    fn absorb_matches_fresh() {
        let inst = instance();
        let set = full_set();
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut a = eng.compute_fresh(&[0, 1]);
        let b = eng.compute_fresh(&[2, 3]);
        eng.absorb(&mut a, &b);
        let fresh = eng.compute_fresh(&[0, 1, 2, 3]);
        for ci in 0..set.len() {
            assert_eq!(eng.value(&a, ci), eng.value(&fresh, ci), "constraint {ci}");
        }
    }

    #[test]
    fn empty_region_never_satisfies_min_max_avg() {
        let inst = instance();
        let set = full_set();
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let agg = eng.empty_agg();
        assert!(!eng.satisfied(&agg, 0));
        assert!(!eng.satisfied(&agg, 1));
        assert!(!eng.satisfied(&agg, 2));
    }

    #[test]
    fn area_value_and_indices() {
        let inst = instance();
        let set = full_set();
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        assert_eq!(eng.area_value(2, 3), 40.0); // AVG(POP) col value
        assert_eq!(eng.area_value(4, 3), 1.0); // COUNT
        assert_eq!(eng.indices_of(Aggregate::Min), &[0]);
        assert_eq!(eng.indices_of(Aggregate::Count), &[4]);
        assert!(eng.has(Aggregate::Avg));
    }
}
