//! Phase 3 of FaCT: the **Local Search** phase (paper §V-C).
//!
//! Tabu search over area moves between neighboring regions. A move relocates
//! one boundary area; it is admissible when the donor region stays connected
//! and non-empty and both regions keep satisfying every user-defined
//! constraint, so `p` never changes. Worsening moves are allowed (to escape
//! local optima), reverse moves are tabu for a fixed tenure, and tabu moves
//! are still taken when they beat the best solution found so far
//! (aspiration). The search stops after `max_no_improve` consecutive
//! iterations without improving the best heterogeneity.

use crate::constraint::Aggregate;
use crate::engine::{ConstraintEngine, RegionAgg};
use crate::partition::{Partition, RegionId};
use std::collections::VecDeque;

/// Tabu search parameters (paper defaults: tenure 10, `max_no_improve = n`).
#[derive(Clone, Copy, Debug)]
pub struct TabuConfig {
    /// Length of the tabu list.
    pub tenure: usize,
    /// Stop after this many consecutive non-improving iterations.
    pub max_no_improve: usize,
    /// Hard iteration cap (safety net; the paper observes improving moves
    /// cluster early, so this is rarely reached).
    pub max_iterations: usize,
}

impl TabuConfig {
    /// Paper defaults for an instance of `n` areas.
    pub fn for_instance(n: usize) -> Self {
        TabuConfig {
            tenure: 10,
            max_no_improve: n,
            max_iterations: 20 * n.max(50),
        }
    }
}

/// Outcome statistics of the local search.
#[derive(Clone, Copy, Debug, Default)]
pub struct TabuStats {
    /// Iterations executed.
    pub iterations: usize,
    /// Moves applied (equals iterations unless the search stalls).
    pub moves: usize,
    /// Heterogeneity before (unordered-pair convention).
    pub initial: f64,
    /// Best heterogeneity found.
    pub best: f64,
}

impl TabuStats {
    /// Relative improvement `(initial - best) / initial` (0 when `initial`
    /// is 0).
    pub fn improvement(&self) -> f64 {
        if self.initial > 0.0 {
            (self.initial - self.best) / self.initial
        } else {
            0.0
        }
    }
}

/// A candidate relocation of `area` from region `from` to region `to`.
#[derive(Clone, Copy, PartialEq, Debug)]
struct Move {
    area: u32,
    from: RegionId,
    to: RegionId,
    delta: f64,
}

/// Runs tabu search in place; the partition ends at the best found solution.
pub fn tabu_search(
    engine: &ConstraintEngine<'_>,
    partition: &mut Partition,
    config: &TabuConfig,
) -> TabuStats {
    let initial = partition.heterogeneity_with(engine);
    let mut best_h = initial;
    let mut best_assignment: Vec<Option<RegionId>> = partition.assignment().to_vec();
    let mut stats = TabuStats {
        initial,
        best: initial,
        ..Default::default()
    };
    // Tabu entries forbid moving `area` back into region `to`.
    let mut tabu: VecDeque<(u32, RegionId)> = VecDeque::with_capacity(config.tenure + 1);
    let mut no_improve = 0usize;

    while no_improve < config.max_no_improve && stats.iterations < config.max_iterations {
        stats.iterations += 1;
        let current_h = partition.heterogeneity_with(engine);
        let Some(mv) = select_move(engine, partition, &tabu, current_h, best_h) else {
            break; // no admissible move at all
        };
        partition.move_area(engine, mv.area, mv.to);
        stats.moves += 1;
        // Forbid the reverse move.
        tabu.push_back((mv.area, mv.from));
        while tabu.len() > config.tenure {
            tabu.pop_front();
        }
        let new_h = current_h + mv.delta;
        if new_h < best_h - 1e-9 {
            best_h = new_h;
            best_assignment = partition.assignment().to_vec();
            no_improve = 0;
        } else {
            no_improve += 1;
        }
    }

    // Return the best partition encountered.
    if (partition.heterogeneity_with(engine) - best_h).abs() > 1e-9 {
        *partition = Partition::from_assignment(engine, &best_assignment);
    }
    stats.best = best_h;
    stats
}

/// Picks the best admissible move (lowest ΔH), skipping tabu moves unless
/// they aspire to beat `best_h`.
fn select_move(
    engine: &ConstraintEngine<'_>,
    partition: &Partition,
    tabu: &VecDeque<(u32, RegionId)>,
    current_h: f64,
    best_h: f64,
) -> Option<Move> {
    let graph = engine.instance().graph();
    let mut best: Option<Move> = None;

    for from in partition.region_ids() {
        let region = partition.region(from);
        if region.members.len() <= 1 {
            continue; // p must not change
        }
        for &area in &region.members {
            // Destination regions adjacent to this area.
            let mut dests: Vec<RegionId> = graph
                .neighbors(area)
                .iter()
                .filter_map(|&nb| partition.region_of(nb))
                .filter(|&r| r != from)
                .collect();
            if dests.is_empty() {
                continue;
            }
            dests.sort_unstable();
            dests.dedup();

            let mut connectivity_checked = false;
            let mut connectivity_ok = false;

            for to in dests {
                let delta = partition.move_objective_delta(engine, area, from, to);
                let is_tabu = tabu.iter().any(|&(a, r)| a == area && r == to);
                let aspires = current_h + delta < best_h - 1e-9;
                if is_tabu && !aspires {
                    continue;
                }
                if let Some(b) = &best {
                    if delta >= b.delta {
                        continue; // cannot beat the incumbent; skip checks
                    }
                }
                // Feasibility: donor keeps constraints after removal,
                // receiver keeps them after addition.
                if !move_keeps_constraints(engine, partition, area, from, to) {
                    continue;
                }
                // Connectivity last (most expensive), computed once per area.
                if !connectivity_checked {
                    connectivity_ok = partition.removal_keeps_connected(engine, area);
                    connectivity_checked = true;
                }
                if !connectivity_ok {
                    break;
                }
                best = Some(Move { area, from, to, delta });
            }
        }
    }
    best
}

/// Checks both regions' constraints for a hypothetical move without mutating
/// the partition (O(m log k) via the incremental aggregates).
fn move_keeps_constraints(
    engine: &ConstraintEngine<'_>,
    partition: &Partition,
    area: u32,
    from: RegionId,
    to: RegionId,
) -> bool {
    let donor = &partition.region(from).agg;
    let recv = &partition.region(to).agg;
    for (ci, c) in engine.constraints().iter().enumerate() {
        let v = engine.area_value(ci, area);
        // Donor after removal.
        let donor_val = hypothetical_after_removal(engine, donor, ci, v);
        match donor_val {
            Some(val) if c.contains(val) => {}
            _ => return false,
        }
        // Receiver after addition.
        let recv_val = hypothetical_after_addition(engine, recv, ci, v);
        if !c.contains(recv_val) {
            return false;
        }
    }
    true
}

fn hypothetical_after_removal(
    engine: &ConstraintEngine<'_>,
    agg: &RegionAgg,
    ci: usize,
    v: f64,
) -> Option<f64> {
    let c = &engine.constraints()[ci];
    let new_count = agg.count.checked_sub(1)?;
    Some(match c.aggregate {
        Aggregate::Count => new_count as f64,
        Aggregate::Sum => agg.sums[c.slot] - v,
        Aggregate::Avg => {
            if new_count == 0 {
                return None;
            }
            (agg.sums[c.slot] - v) / new_count as f64
        }
        Aggregate::Min => agg.multisets[c.slot].min_excluding(v)?,
        Aggregate::Max => agg.multisets[c.slot].max_excluding(v)?,
    })
}

fn hypothetical_after_addition(
    engine: &ConstraintEngine<'_>,
    agg: &RegionAgg,
    ci: usize,
    v: f64,
) -> f64 {
    let c = &engine.constraints()[ci];
    match c.aggregate {
        Aggregate::Count => (agg.count + 1) as f64,
        Aggregate::Sum => agg.sums[c.slot] + v,
        Aggregate::Avg => (agg.sums[c.slot] + v) / (agg.count + 1) as f64,
        Aggregate::Min => agg.multisets[c.slot].min().map_or(v, |m| m.min(v)),
        Aggregate::Max => agg.multisets[c.slot].max().map_or(v, |m| m.max(v)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttributeTable;
    use crate::constraint::{Constraint, ConstraintSet};
    use crate::instance::EmpInstance;
    use emp_graph::ContiguityGraph;

    /// 4x1 path with dissimilarity [0, 0, 10, 10]: the optimal 2-region
    /// partition is {0,1} | {2,3} with H = 0.
    fn line_instance() -> EmpInstance {
        let graph = ContiguityGraph::lattice(4, 1);
        let mut attrs = AttributeTable::new(4);
        attrs.push_column("POP", vec![1.0; 4]).unwrap();
        attrs.push_column("D", vec![0.0, 0.0, 10.0, 10.0]).unwrap();
        EmpInstance::new(graph, attrs, "D").unwrap()
    }

    #[test]
    fn improves_bad_partition_to_optimum() {
        let inst = line_instance();
        let set = ConstraintSet::new()
            .with(Constraint::count(1.0, 3.0).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(4);
        // Suboptimal split {0} | {1,2,3}: H = 0 + (10 + 10 + 0) = 20.
        part.create_region(&eng, &[0]);
        part.create_region(&eng, &[1, 2, 3]);
        assert!((part.heterogeneity_with(&eng) - 20.0).abs() < 1e-9);
        let stats = tabu_search(&eng, &mut part, &TabuConfig::for_instance(4));
        assert!(
            (part.heterogeneity_with(&eng) - 0.0).abs() < 1e-9,
            "H = {}",
            part.heterogeneity_with(&eng)
        );
        assert_eq!(part.p(), 2);
        assert!(stats.best <= stats.initial);
        assert!((stats.improvement() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn p_is_preserved() {
        let inst = line_instance();
        let set = ConstraintSet::new();
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(4);
        part.create_region(&eng, &[0, 1]);
        part.create_region(&eng, &[2, 3]);
        let p_before = part.p();
        tabu_search(&eng, &mut part, &TabuConfig::for_instance(4));
        assert_eq!(part.p(), p_before);
    }

    #[test]
    fn moves_respect_constraints() {
        // SUM >= 2 with unit weights: no region may shrink below 2 areas.
        let inst = line_instance();
        let set = ConstraintSet::new()
            .with(Constraint::sum("POP", 2.0, f64::INFINITY).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(4);
        part.create_region(&eng, &[0, 1]);
        part.create_region(&eng, &[2, 3]);
        tabu_search(&eng, &mut part, &TabuConfig::for_instance(4));
        for id in part.region_ids() {
            assert!(eng.satisfies_all(&part.region(id).agg));
            assert!(part.region(id).members.len() >= 2);
        }
    }

    #[test]
    fn contiguity_is_preserved() {
        let inst = {
            let graph = ContiguityGraph::lattice(3, 3);
            let mut attrs = AttributeTable::new(9);
            attrs.push_column("POP", vec![1.0; 9]).unwrap();
            attrs
                .push_column("D", (0..9).map(|i| (i % 4) as f64).collect())
                .unwrap();
            EmpInstance::new(graph, attrs, "D").unwrap()
        };
        let set = ConstraintSet::new();
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(9);
        part.create_region(&eng, &[0, 1, 2]);
        part.create_region(&eng, &[3, 4, 5]);
        part.create_region(&eng, &[6, 7, 8]);
        tabu_search(&eng, &mut part, &TabuConfig::for_instance(9));
        for members in part.extract_regions() {
            assert!(emp_graph::subgraph::is_connected_subset(inst.graph(), &members));
        }
    }

    #[test]
    fn no_moves_when_single_region() {
        let inst = line_instance();
        let set = ConstraintSet::new();
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(4);
        part.create_region(&eng, &[0, 1, 2, 3]);
        let stats = tabu_search(&eng, &mut part, &TabuConfig::for_instance(4));
        assert_eq!(stats.moves, 0);
        assert_eq!(part.p(), 1);
    }

    #[test]
    fn hypothetical_helpers_match_actual() {
        let inst = line_instance();
        let set = ConstraintSet::new()
            .with(Constraint::min("D", f64::NEG_INFINITY, f64::INFINITY).unwrap())
            .with(Constraint::max("D", f64::NEG_INFINITY, f64::INFINITY).unwrap())
            .with(Constraint::avg("D", f64::NEG_INFINITY, f64::INFINITY).unwrap())
            .with(Constraint::sum("D", f64::NEG_INFINITY, f64::INFINITY).unwrap())
            .with(Constraint::count(1.0, f64::INFINITY).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let agg = eng.compute_fresh(&[1, 2, 3]); // D values 0, 10, 10
        for ci in 0..5 {
            let v = eng.area_value(ci, 2);
            let hypo = hypothetical_after_removal(&eng, &agg, ci, v).unwrap();
            let actual = {
                let mut a = agg.clone();
                eng.remove_area(&mut a, 2);
                eng.value(&a, ci)
            };
            assert_eq!(hypo, actual, "removal ci={ci}");
            let v0 = eng.area_value(ci, 0);
            let hypo = hypothetical_after_addition(&eng, &agg, ci, v0);
            let actual = {
                let mut a = agg.clone();
                eng.add_area(&mut a, 0);
                eng.value(&a, ci)
            };
            assert_eq!(hypo, actual, "addition ci={ci}");
        }
    }

    #[test]
    fn compactness_objective_reshapes_regions() {
        use crate::objective::ObjectiveSpec;
        // 4x2 lattice; start with two interleaved snaky regions and a
        // compactness objective on the (x, y) centroids: tabu should move
        // toward two 2x2 blocks (or at least reduce the spread).
        let graph = ContiguityGraph::lattice(4, 2);
        let mut attrs = AttributeTable::new(8);
        attrs.push_column("POP", vec![1.0; 8]).unwrap();
        let xs: Vec<f64> = (0..8).map(|i| (i % 4) as f64).collect();
        let ys: Vec<f64> = (0..8).map(|i| (i / 4) as f64).collect();
        let inst = EmpInstance::new(graph, attrs, "POP")
            .unwrap()
            .with_objective(ObjectiveSpec::compactness(xs, ys).unwrap())
            .unwrap();
        let set = ConstraintSet::new().with(Constraint::count(2.0, 6.0).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(8);
        // Stripes: {0,1,2,3} (top row) and {4,5,6,7} (bottom row): each has
        // x-spread sum |i-j| pairs = 10, y-spread 0 -> total 20.
        part.create_region(&eng, &[0, 1, 2, 3]);
        part.create_region(&eng, &[4, 5, 6, 7]);
        let before = part.heterogeneity_with(&eng);
        assert!((before - 20.0).abs() < 1e-9);
        let stats = tabu_search(&eng, &mut part, &TabuConfig::for_instance(8));
        // Two 2x2 blocks score: per block x-spread 4*|..|: pairs (0,0,1,1):
        // sum |xi-xj| = 4, y-spread = 4 -> 8 per... compute: values x
        // {0,0,1,1}: pairs |0-0|,|0-1|x4,|1-1| = 4; y {0,0,1,1} same = 4;
        // block total 8, two blocks 16.
        assert!(stats.best <= 16.0 + 1e-9, "best = {}", stats.best);
        assert_eq!(part.p(), 2);
    }

    #[test]
    fn balanced_multi_criteria_objective_runs() {
        use crate::objective::{Channel, ObjectiveSpec};
        let graph = ContiguityGraph::lattice(3, 3);
        let mut attrs = AttributeTable::new(9);
        attrs.push_column("POP", vec![1.0; 9]).unwrap();
        let d: Vec<f64> = (0..9).map(|i| (i * i % 7) as f64).collect();
        let xs: Vec<f64> = (0..9).map(|i| (i % 3) as f64).collect();
        let spec = ObjectiveSpec::from_channels(vec![
            Channel { name: "dissim".into(), values: d.clone(), weight: 1.0 },
            Channel { name: "x".into(), values: xs, weight: 0.5 },
        ])
        .unwrap();
        let inst = EmpInstance::new(graph, attrs, "POP")
            .unwrap()
            .with_objective(spec)
            .unwrap();
        let set = ConstraintSet::new().with(Constraint::count(1.0, 5.0).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(9);
        part.create_region(&eng, &[0, 1, 2]);
        part.create_region(&eng, &[3, 4, 5]);
        part.create_region(&eng, &[6, 7, 8]);
        let stats = tabu_search(&eng, &mut part, &TabuConfig::for_instance(9));
        assert!(stats.best <= stats.initial + 1e-9);
        assert_eq!(part.p(), 3);
        // The final score matches a fresh recomputation via the spec.
        let fresh = inst.objective().score(&part.extract_regions());
        assert!((part.heterogeneity_with(&eng) - fresh).abs() < 1e-9);
    }

    #[test]
    fn stats_improvement_handles_zero_initial() {
        let s = TabuStats {
            initial: 0.0,
            best: 0.0,
            ..Default::default()
        };
        assert_eq!(s.improvement(), 0.0);
    }
}
