//! Phase 3 of FaCT: the **Local Search** phase (paper §V-C).
//!
//! Tabu search over area moves between neighboring regions. A move relocates
//! one boundary area; it is admissible when the donor region stays connected
//! and non-empty and both regions keep satisfying every user-defined
//! constraint, so `p` never changes. Worsening moves are allowed (to escape
//! local optima), reverse moves are tabu for a fixed tenure, and tabu moves
//! are still taken when they beat the best solution found so far
//! (aspiration). The search stops after `max_no_improve` consecutive
//! iterations without improving the best heterogeneity.
//!
//! # Incremental neighborhood
//!
//! This phase dominates FaCT's total runtime at scale (paper Figures 5–16),
//! so the neighborhood is maintained *incrementally* across iterations
//! instead of being rebuilt from scratch:
//!
//! * a **boundary-area set** ([`BoundarySet`]) tracks exactly the areas with
//!   at least one neighbor in a different region — the only possible move
//!   candidates — and is updated in O(deg²) after each applied move (only
//!   the moved area and its graph neighbors can change status);
//! * **per-region articulation points** are cached
//!   ([`NeighborhoodState`]), turning the per-candidate "does the donor stay
//!   connected?" BFS into an O(log k) sorted-set lookup; only the donor and
//!   receiver regions of the last applied move are invalidated;
//! * the current heterogeneity is tracked **incrementally** from move deltas
//!   (resynced against a fresh recomputation every
//!   [`RESYNC_INTERVAL`] iterations to bound float drift);
//! * tabu tests are **O(1)** via an expiry-stamp table ([`TabuTable`])
//!   instead of a linear scan over a tenure-length list.
//!
//! The pre-incremental full-scan/BFS implementation is kept as
//! [`select_move_reference`] — both the equivalence tests and the
//! DESIGN.md §4.2 ablation (gated by [`TabuConfig::incremental`], plumbed
//! from `FactConfig::incremental_tabu`) rely on it. Both implementations
//! select moves under the same strict total order (ΔH, then area id, then
//! destination id), so for a fixed seed they apply identical move sequences
//! and reach identical final heterogeneity.

use crate::constraint::Aggregate;
use crate::control::{SolveBudget, StopReason};
use crate::engine::{ConstraintEngine, RegionAgg};
use crate::partition::{Partition, RegionId};
use emp_graph::articulation::{articulation_points_into, ArticulationScratch};
use emp_obs::{CounterKind, Counters, HistKind, Recorder};

/// The incrementally-tracked heterogeneity is resynced against a fresh
/// [`Partition::heterogeneity_with`] every this many iterations; a debug
/// assertion bounds the accumulated float drift at 1e-6 (relative).
pub const RESYNC_INTERVAL: usize = 256;

/// Live-metrics mirrors are refreshed every this many tabu iterations.
/// The flush is ~10² relaxed atomic stores; at this cadence it amortizes
/// to well under the 3% overhead budget gated by `bench_core`
/// (`DESIGN.md` §13), and the jobs=1 path stays allocation-free (stores
/// into preallocated atomics).
pub const LIVE_FLUSH_INTERVAL: usize = 64;

/// Tabu search parameters (paper defaults: tenure 10, `max_no_improve = n`).
#[derive(Clone, Copy, Debug)]
pub struct TabuConfig {
    /// Length of the tabu list.
    pub tenure: usize,
    /// Stop after this many consecutive non-improving iterations.
    pub max_no_improve: usize,
    /// Hard iteration cap (safety net; the paper observes improving moves
    /// cluster early, so this is rarely reached).
    pub max_iterations: usize,
    /// Use the incremental neighborhood (boundary set + cached articulation
    /// points). `false` selects the full-scan + BFS-per-candidate reference
    /// path — the DESIGN.md §4.2 ablation baseline. Move selection is
    /// identical either way; only the cost differs.
    pub incremental: bool,
    /// Worker threads for sharded move evaluation. `1` (the default) runs
    /// the existing allocation-free serial scan; `> 1` evaluates boundary
    /// shards on a persistent scoped pool (`crate::tabu_par`) and requires
    /// `incremental` (the reference path stays serial). Either way the
    /// applied move sequence, `p`, and `H` are identical — see DESIGN.md
    /// §12.
    pub jobs: usize,
}

impl TabuConfig {
    /// Paper defaults for an instance of `n` areas.
    pub fn for_instance(n: usize) -> Self {
        TabuConfig {
            tenure: 10,
            max_no_improve: n,
            max_iterations: 20 * n.max(50),
            incremental: true,
            jobs: 1,
        }
    }
}

/// Outcome statistics of the local search.
#[derive(Clone, Copy, Debug, Default)]
pub struct TabuStats {
    /// Iterations executed.
    pub iterations: usize,
    /// Moves applied (equals iterations unless the search stalls).
    pub moves: usize,
    /// Heterogeneity before (unordered-pair convention).
    pub initial: f64,
    /// Best heterogeneity found.
    pub best: f64,
}

impl TabuStats {
    /// Relative improvement `(initial - best) / initial`.
    ///
    /// `None` when the initial heterogeneity is zero or non-finite — the
    /// ratio is undefined there (e.g. a perfectly homogeneous construction)
    /// and callers render it as `n/a` instead of a fake `0`. The
    /// solve-level convention (which additionally distinguishes "tabu never
    /// ran") is documented in `DESIGN.md` §6.
    pub fn improvement(&self) -> Option<f64> {
        (self.initial.is_finite() && self.initial > 0.0)
            .then(|| (self.initial - self.best) / self.initial)
    }
}

/// A candidate relocation of `area` from region `from` to region `to`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Move {
    /// The relocated area.
    pub area: u32,
    /// Donor region.
    pub from: RegionId,
    /// Receiver region.
    pub to: RegionId,
    /// Objective change of applying the move (negative improves).
    pub delta: f64,
}

/// Whether candidate `(delta, area, to)` beats the incumbent under the
/// strict total order ΔH, then area id, then destination id. The order makes
/// move selection independent of candidate enumeration order, which is what
/// lets the incremental and reference neighborhoods trace identical
/// move sequences.
#[inline]
pub(crate) fn beats(delta: f64, area: u32, to: RegionId, incumbent: &Option<Move>) -> bool {
    match incumbent {
        None => true,
        Some(b) => match delta.partial_cmp(&b.delta) {
            Some(std::cmp::Ordering::Less) => true,
            Some(std::cmp::Ordering::Equal) => (area, to) < (b.area, b.to),
            _ => false,
        },
    }
}

/// O(1) tabu tests via expiry stamps: forbidding `(area, region)` after the
/// `m`-th applied move stores the stamp `m + tenure`; the pair stays tabu
/// while fewer than `tenure` further moves have been applied. Semantically
/// identical to the classic tenure-length FIFO list (later re-forbids simply
/// overwrite with a larger stamp), but the stamps live in a flat vector
/// indexed by `area * region_slots + region` — a test is one array load, no
/// hashing and no O(tenure) scan.
///
/// Region slots are stable for the lifetime of a search (tabu moves never
/// create or destroy regions), so the stride is fixed up front by
/// [`TabuTable::with_dimensions`]; [`TabuTable::new`] starts empty and grows
/// on demand (test convenience).
#[derive(Clone, Debug, Default)]
pub struct TabuTable {
    /// `expiry[area * stride + region]`; 0 = never forbidden.
    expiry: Vec<u32>,
    /// Region-slot stride (columns per area row).
    stride: usize,
    /// Number of area rows allocated.
    areas: usize,
    tenure: usize,
}

impl TabuTable {
    /// An empty table with the given tenure; storage grows on first use.
    pub fn new(tenure: usize) -> Self {
        TabuTable {
            expiry: Vec::new(),
            stride: 0,
            areas: 0,
            tenure,
        }
    }

    /// A table pre-sized for `areas` area rows and `region_slots` columns,
    /// so the hot path never reallocates.
    pub fn with_dimensions(tenure: usize, areas: usize, region_slots: usize) -> Self {
        TabuTable {
            expiry: vec![0; areas * region_slots],
            stride: region_slots,
            areas,
            tenure,
        }
    }

    /// Grows the table to cover `(area, region)`, remapping existing stamps.
    fn grow(&mut self, area: u32, region: RegionId) {
        let areas = self.areas.max(area as usize + 1);
        let stride = self.stride.max(region as usize + 1);
        let mut next = vec![0u32; areas * stride];
        for a in 0..self.areas {
            let src = &self.expiry[a * self.stride..(a + 1) * self.stride];
            next[a * stride..a * stride + self.stride].copy_from_slice(src);
        }
        self.expiry = next;
        self.areas = areas;
        self.stride = stride;
    }

    /// Forbids moving `area` into `region`; `moves_done` is the number of
    /// moves applied so far *including* the one that triggered the ban.
    pub fn forbid(&mut self, area: u32, region: RegionId, moves_done: usize) {
        if self.tenure == 0 {
            return;
        }
        if (area as usize) >= self.areas || (region as usize) >= self.stride {
            self.grow(area, region);
        }
        self.expiry[area as usize * self.stride + region as usize] =
            (moves_done + self.tenure) as u32;
    }

    /// Whether moving `area` into `region` is currently tabu.
    #[inline]
    pub fn is_tabu(&self, area: u32, region: RegionId, moves_done: usize) -> bool {
        if (area as usize) >= self.areas || (region as usize) >= self.stride {
            return false; // never forbidden
        }
        (moves_done as u32) < self.expiry[area as usize * self.stride + region as usize]
    }

    /// Region-slot stride (checkpoint layout field).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Dense expiry-table length (checkpoint layout field).
    pub fn table_len(&self) -> usize {
        self.expiry.len()
    }

    /// Sparse dump of the non-zero expiry stamps as `(flat index, stamp)`
    /// pairs in index order — the tenure bounds how many pairs are live, so
    /// this stays tiny even for large instances.
    pub fn nonzero_stamps(&self) -> Vec<(u32, u32)> {
        self.expiry
            .iter()
            .enumerate()
            .filter(|(_, &stamp)| stamp != 0)
            .map(|(i, &stamp)| (i as u32, stamp))
            .collect()
    }

    /// Rebuilds a table from its checkpoint layout fields and sparse stamp
    /// dump. The layout must be internally consistent (`stride` divides
    /// `len`, every stamp index in range) or an error describes the defect.
    pub fn from_stamps(
        tenure: usize,
        len: usize,
        stride: usize,
        stamps: &[(u32, u32)],
    ) -> Result<Self, String> {
        if stride == 0 && len != 0 {
            return Err("tabu table: zero stride with non-empty storage".into());
        }
        if stride != 0 && !len.is_multiple_of(stride) {
            return Err(format!(
                "tabu table: length {len} not a multiple of stride {stride}"
            ));
        }
        let mut expiry = vec![0u32; len];
        for &(idx, stamp) in stamps {
            let slot = expiry
                .get_mut(idx as usize)
                .ok_or_else(|| format!("tabu table: stamp index {idx} out of range (len {len})"))?;
            *slot = stamp;
        }
        Ok(TabuTable {
            expiry,
            stride,
            areas: len.checked_div(stride).unwrap_or(0),
            tenure,
        })
    }
}

/// The set of areas with at least one neighbor assigned to a different
/// region — exactly the possible move candidates. Dense index + membership
/// list for O(1) insert/remove/test and cache-friendly iteration.
#[derive(Clone, Debug)]
pub struct BoundarySet {
    list: Vec<u32>,
    /// Position of each area in `list`; `u32::MAX` = absent.
    pos: Vec<u32>,
}

impl BoundarySet {
    pub(crate) fn new(n: usize) -> Self {
        BoundarySet {
            list: Vec::new(),
            pos: vec![u32::MAX; n],
        }
    }

    /// Whether `area` is currently a boundary area.
    #[inline]
    pub fn contains(&self, area: u32) -> bool {
        self.pos[area as usize] != u32::MAX
    }

    /// The boundary areas, in insertion (unspecified) order.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.list
    }

    pub(crate) fn insert(&mut self, area: u32) {
        if !self.contains(area) {
            self.pos[area as usize] = self.list.len() as u32;
            self.list.push(area);
        }
    }

    pub(crate) fn remove(&mut self, area: u32) {
        let p = self.pos[area as usize];
        if p == u32::MAX {
            return;
        }
        self.list.swap_remove(p as usize);
        if let Some(&moved) = self.list.get(p as usize) {
            self.pos[moved as usize] = p;
        }
        self.pos[area as usize] = u32::MAX;
    }
}

/// Whether `area` has at least one neighbor assigned to a different region.
pub(crate) fn is_boundary(engine: &ConstraintEngine<'_>, partition: &Partition, area: u32) -> bool {
    let Some(r) = partition.region_of(area) else {
        return false;
    };
    engine
        .instance()
        .graph()
        .neighbors(area)
        .iter()
        .any(|&nb| partition.region_of(nb).is_some_and(|o| o != r))
}

/// Donor-side admissibility of one boundary area, split three ways so the
/// memo can replay the right telemetry counter on every cache hit: the
/// area-level slack proof is a *prune* (`tabu_slack_prune_skips`), a
/// contiguity or MIN/MAX/COUNT failure is a *rejection*
/// (`tabu_rejected_infeasible`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum DonorVerdict {
    /// The area may leave its region (contiguity and all constraints hold).
    Admissible,
    /// [`donor_value_blocked`] proved a SUM/AVG violation in O(1).
    SlackBlocked,
    /// The full check failed (articulation point, or a COUNT/MIN/MAX or
    /// unproven SUM/AVG violation).
    Rejected,
}

/// A memoized donor-side verdict: holds for `area` while it stays in
/// `region` and the region's version is unchanged.
#[derive(Clone, Copy)]
pub(crate) struct DonorEntry {
    pub(crate) region: RegionId,
    pub(crate) version: u64,
    pub(crate) verdict: DonorVerdict,
}

impl DonorEntry {
    pub(crate) const EMPTY: DonorEntry = DonorEntry {
        region: u32::MAX,
        version: 0,
        verdict: DonorVerdict::Rejected,
    };
}

/// Region-level constraint-slack verdict: whether *every* possible single
/// area donation out of (`donor_blocked`) or into (`receiver_blocked`) a
/// region is provably infeasible. The donor side brackets a removed area's
/// contribution by the region's *own* member value range (a donation always
/// removes a member, so the region-local bracket is tight exactly where it
/// matters: regions sitting at a constraint floor); the receiver side uses
/// the global per-constraint bounds ([`ConstraintEngine::value_bounds`]) —
/// an incoming area can be any area. `true` is a proof; `false` just means
/// the per-move checks must decide. See DESIGN.md §12 for the per-aggregate
/// soundness argument.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct SlackVerdict {
    pub(crate) donor_blocked: bool,
    pub(crate) receiver_blocked: bool,
}

impl SlackVerdict {
    pub(crate) fn compute(engine: &ConstraintEngine<'_>, agg: &RegionAgg, members: &[u32]) -> Self {
        SlackVerdict {
            donor_blocked: donor_blocked(engine, agg, members),
            receiver_blocked: receiver_blocked(engine, agg),
        }
    }
}

/// Min/max of column `col` over the region's members — the donor-side
/// bracket on a removed area's contribution. NaN member values are skipped
/// by `f64::min`/`max`, but any NaN member also makes the region's running
/// sum NaN, so every slack comparison fails and the prune stays off.
fn member_value_bounds(engine: &ConstraintEngine<'_>, members: &[u32], col: usize) -> (f64, f64) {
    let attrs = engine.instance().attributes();
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &a in members {
        let v = attrs.value(col, a as usize);
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

/// Whether *no* area removal can leave `agg` satisfying every constraint.
/// Sound because IEEE-754 subtraction and division by a positive count are
/// weakly monotone: any removable value `v` satisfies `rmin <= v <= rmax`
/// (it is a member), so the achievable post-removal aggregate range is
/// bracketed by plugging in the member extremes, and a NaN sum or bound
/// (pruning disabled) fails every comparison. O(|members|) per SUM/AVG
/// constraint — paid once per region version thanks to the verdict caches.
pub(crate) fn donor_blocked(
    engine: &ConstraintEngine<'_>,
    agg: &RegionAgg,
    members: &[u32],
) -> bool {
    engine.constraints().iter().any(|c| {
        match c.aggregate {
            Aggregate::Count => !c.contains(agg.count.saturating_sub(1) as f64),
            Aggregate::Sum => {
                let (rmin, rmax) = member_value_bounds(engine, members, c.col);
                let s = agg.sums[c.slot];
                s - rmin < c.low || s - rmax > c.high
            }
            Aggregate::Avg => {
                let k = agg.count.saturating_sub(1);
                if k == 0 {
                    false // the per-move hypothetical already rejects
                } else {
                    let (rmin, rmax) = member_value_bounds(engine, members, c.col);
                    let s = agg.sums[c.slot];
                    let k = k as f64;
                    (s - rmin) / k < c.low || (s - rmax) / k > c.high
                }
            }
            // Removing an element can only raise the min / lower the max,
            // so a min already above `high` (max below `low`) stays violated.
            Aggregate::Min => agg.multisets[c.slot].min().is_some_and(|m| m > c.high),
            Aggregate::Max => agg.multisets[c.slot].max().is_some_and(|m| m < c.low),
        }
    })
}

/// Whether *no* area addition can leave `agg` satisfying every constraint.
pub(crate) fn receiver_blocked(engine: &ConstraintEngine<'_>, agg: &RegionAgg) -> bool {
    engine.constraints().iter().enumerate().any(|(ci, c)| {
        let (gmin, gmax) = engine.value_bounds(ci);
        match c.aggregate {
            Aggregate::Count => !c.contains((agg.count + 1) as f64),
            Aggregate::Sum => {
                let s = agg.sums[c.slot];
                s + gmax < c.low || s + gmin > c.high
            }
            Aggregate::Avg => {
                let s = agg.sums[c.slot];
                let k = (agg.count + 1) as f64;
                (s + gmax) / k < c.low || (s + gmin) / k > c.high
            }
            // min(m, v) is bounded above by both m and any v ≤ gmax; adding
            // an area can never raise a min already below `low`.
            Aggregate::Min => {
                gmax < c.low || agg.multisets[c.slot].min().is_some_and(|m| m < c.low)
            }
            Aggregate::Max => {
                gmin > c.high || agg.multisets[c.slot].max().is_some_and(|m| m > c.high)
            }
        }
    })
}

/// A cached [`SlackVerdict`], valid while the region's version is unchanged.
#[derive(Clone, Copy)]
struct SlackStamp {
    /// `region_version + 1` at compute time; 0 = never computed.
    stamp: u64,
    verdict: SlackVerdict,
}

impl SlackStamp {
    const EMPTY: SlackStamp = SlackStamp {
        stamp: 0,
        verdict: SlackVerdict {
            donor_blocked: false,
            receiver_blocked: false,
        },
    };
}

/// Incrementally-maintained neighborhood of the tabu search: the boundary
/// set plus a lazily-computed, per-region articulation-point cache.
///
/// Invariants (checked by [`NeighborhoodState::assert_consistent`]):
/// * `boundary` holds exactly the assigned areas with a neighbor in another
///   region;
/// * every *computed* articulation cache entry equals
///   `emp_graph::articulation::articulation_points` of that region's current
///   members (entries for the donor/receiver of each applied move are
///   invalidated and recomputed on next use).
pub struct NeighborhoodState {
    boundary: BoundarySet,
    /// Sorted articulation points per region slot; `None` = stale or never
    /// computed.
    arts: Vec<Option<Vec<u32>>>,
    /// Recycled buffers for invalidated cache entries.
    spare: Vec<Vec<u32>>,
    scratch: ArticulationScratch,
    /// Scratch for candidate destination regions.
    dests: Vec<RegionId>,
    /// Per-region-slot mutation counter; bumped whenever a move touches the
    /// region, so version-stamped caches invalidate in O(1).
    region_version: Vec<u64>,
    /// Memoized donor-side admissibility (contiguity + donor constraints)
    /// per area, valid while the area's region version is unchanged.
    donor_cache: Vec<DonorEntry>,
    /// Memoized region-level slack verdicts, version-stamped like
    /// `donor_cache` — an applied move touches exactly two regions, so
    /// between moves almost every verdict is a cache hit.
    slack: Vec<SlackStamp>,
    /// Telemetry accumulated by this neighborhood (cache traffic, move
    /// evaluation accounting); merged into the search's recorder at the end.
    counters: Counters,
}

impl NeighborhoodState {
    /// Builds the boundary set from scratch; articulation caches start cold
    /// and fill lazily.
    pub fn new(engine: &ConstraintEngine<'_>, partition: &Partition) -> Self {
        let n = partition.len();
        let mut boundary = BoundarySet::new(n);
        for area in 0..n as u32 {
            if is_boundary(engine, partition, area) {
                boundary.insert(area);
            }
        }
        let mut counters = Counters::new();
        counters.record_max(CounterKind::BoundaryAreasPeak, boundary.list.len() as u64);
        NeighborhoodState {
            boundary,
            arts: Vec::new(),
            spare: Vec::new(),
            scratch: ArticulationScratch::default(),
            dests: Vec::new(),
            region_version: Vec::new(),
            donor_cache: vec![DonorEntry::EMPTY; n],
            slack: Vec::new(),
            counters,
        }
    }

    /// The current boundary set (test/diagnostic access).
    pub fn boundary(&self) -> &BoundarySet {
        &self.boundary
    }

    /// The telemetry accumulated so far (cache traffic, move accounting).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Updates the caches after `partition.move_area(mv.area, mv.to)` has
    /// been applied. Boundary status can only change for the moved area and
    /// its graph neighbors (status is a function of the area's own region
    /// and its neighbors' regions, and only `mv.area`'s region changed);
    /// only the donor and receiver articulation caches are invalidated.
    pub fn on_move_applied(
        &mut self,
        engine: &ConstraintEngine<'_>,
        partition: &Partition,
        mv: Move,
    ) {
        self.refresh_boundary_status(engine, partition, mv.area);
        let graph = engine.instance().graph();
        for &nb in graph.neighbors(mv.area) {
            self.refresh_boundary_status(engine, partition, nb);
        }
        self.invalidate_region(mv.from);
        self.invalidate_region(mv.to);
        self.counters.record_max(
            CounterKind::BoundaryAreasPeak,
            self.boundary.list.len() as u64,
        );
    }

    fn refresh_boundary_status(
        &mut self,
        engine: &ConstraintEngine<'_>,
        partition: &Partition,
        area: u32,
    ) {
        if is_boundary(engine, partition, area) {
            self.boundary.insert(area);
        } else {
            self.boundary.remove(area);
        }
    }

    fn invalidate_region(&mut self, id: RegionId) {
        if let Some(slot) = self.arts.get_mut(id as usize) {
            if let Some(buf) = slot.take() {
                self.spare.push(buf);
                self.counters
                    .inc(CounterKind::ArticulationCacheInvalidations);
            }
        }
        // Any donor verdict cached against the old version is now stale.
        // A region never versioned here has no cached verdicts (the cache
        // write path sizes the vector first).
        if let Some(v) = self.region_version.get_mut(id as usize) {
            *v += 1;
        }
    }

    /// The (cached) region-level slack verdict of region `id`, recomputed
    /// when the region's version has moved past the stamp.
    fn slack_verdict(
        &mut self,
        engine: &ConstraintEngine<'_>,
        partition: &Partition,
        id: RegionId,
    ) -> SlackVerdict {
        let idx = id as usize;
        if self.region_version.len() <= idx {
            self.region_version
                .resize(partition.region_slots().max(idx + 1), 0);
        }
        if self.slack.len() <= idx {
            self.slack
                .resize(partition.region_slots().max(idx + 1), SlackStamp::EMPTY);
        }
        let version = self.region_version[idx];
        let e = self.slack[idx];
        if e.stamp == version + 1 {
            return e.verdict;
        }
        let region = partition.region(id);
        let verdict = SlackVerdict::compute(engine, &region.agg, &region.members);
        self.slack[idx] = SlackStamp {
            stamp: version + 1,
            verdict,
        };
        verdict
    }

    /// Memoized donor-side admissibility of moving `area` out of `from`:
    /// the O(1) area-level slack gate first ([`donor_value_blocked`] — its
    /// hit is a proof, so the full check is skipped entirely), then
    /// contiguity (cached articulation points) plus the donor constraint
    /// check. The verdict depends only on region `from`'s state, so it stays
    /// valid until a move touches that region, and a cache hit replays the
    /// matching telemetry counter at zero marginal cost.
    fn donor_verdict(
        &mut self,
        engine: &ConstraintEngine<'_>,
        partition: &Partition,
        area: u32,
        from: RegionId,
    ) -> DonorVerdict {
        if self.region_version.len() <= from as usize {
            self.region_version
                .resize(partition.region_slots().max(from as usize + 1), 0);
        }
        let version = self.region_version[from as usize];
        let entry = self.donor_cache[area as usize];
        if entry.region == from && entry.version == version {
            return entry.verdict;
        }
        let verdict = if donor_value_blocked(engine, &partition.region(from).agg, area) {
            DonorVerdict::SlackBlocked
        } else if self.removal_safe(engine, partition, area, from)
            && donor_keeps_constraints(engine, partition, area, from, &mut self.counters)
        {
            DonorVerdict::Admissible
        } else {
            DonorVerdict::Rejected
        };
        self.donor_cache[area as usize] = DonorEntry {
            region: from,
            version,
            verdict,
        };
        verdict
    }

    /// The (cached) sorted articulation points of region `id`, recomputing
    /// on a cold or invalidated entry.
    pub fn articulation_points(
        &mut self,
        engine: &ConstraintEngine<'_>,
        partition: &Partition,
        id: RegionId,
    ) -> &[u32] {
        if self.arts.len() <= id as usize {
            self.arts
                .resize_with(partition.region_slots().max(id as usize + 1), || None);
        }
        self.counters.inc(CounterKind::ArticulationQueries);
        let slot = &mut self.arts[id as usize];
        if slot.is_none() {
            self.counters.inc(CounterKind::ArticulationCacheMisses);
            let mut buf = self.spare.pop().unwrap_or_default();
            articulation_points_into(
                engine.instance().graph(),
                &partition.region(id).members,
                &mut self.scratch,
                &mut buf,
            );
            *slot = Some(buf);
        } else {
            self.counters.inc(CounterKind::ArticulationCacheHits);
        }
        self.arts[id as usize].as_deref().expect("just computed")
    }

    /// O(log k) contiguity-safe test: removing `area` keeps region `id`
    /// connected iff `area` is not one of its articulation points (callers
    /// ensure the region keeps at least one member).
    fn removal_safe(
        &mut self,
        engine: &ConstraintEngine<'_>,
        partition: &Partition,
        area: u32,
        id: RegionId,
    ) -> bool {
        self.articulation_points(engine, partition, id)
            .binary_search(&area)
            .is_err()
    }

    /// Picks the best admissible move from the boundary set (lowest ΔH,
    /// ties broken by area then destination id), skipping tabu moves unless
    /// they aspire to beat `best_h`. Equivalent to
    /// [`select_move_reference`] by construction.
    pub fn select_move(
        &mut self,
        engine: &ConstraintEngine<'_>,
        partition: &Partition,
        tabu: &TabuTable,
        moves_done: usize,
        current_h: f64,
        best_h: f64,
    ) -> Option<Move> {
        let graph = engine.instance().graph();
        let mut best: Option<Move> = None;
        let mut walked = 0u64;
        for i in 0..self.boundary.list.len() {
            let area = self.boundary.list[i];
            let from = partition
                .region_of(area)
                .expect("boundary areas are assigned");
            if partition.region(from).members.len() <= 1 {
                continue; // p must not change
            }
            // Region-level slack gate: if no removal whatsoever can keep the
            // donor feasible, skip the area before any per-move work (the
            // verdict is a proof, so the selected move cannot change).
            if self.slack_verdict(engine, partition, from).donor_blocked {
                self.counters.inc(CounterKind::TabuSlackPruneSkips);
                continue;
            }
            // Donor-side gate next: the destination-independent verdict
            // (area-level slack proof, then contiguity + donor constraints)
            // rules out the whole area before any per-destination work, and
            // is memoized against the donor region's version — an applied
            // move touches exactly two regions, so between moves almost
            // every verdict is a cache hit (with tight SUM/COUNT lower
            // bounds most donors sit at the floor, so this skips the
            // destination enumeration entirely).
            match self.donor_verdict(engine, partition, area, from) {
                DonorVerdict::SlackBlocked => {
                    self.counters.inc(CounterKind::TabuSlackPruneSkips);
                    continue;
                }
                DonorVerdict::Rejected => {
                    self.counters.inc(CounterKind::TabuRejectedInfeasible);
                    continue;
                }
                DonorVerdict::Admissible => {}
            }
            let mut dests = std::mem::take(&mut self.dests);
            dests.clear();
            let neighbors = graph.neighbors(area);
            walked += neighbors.len() as u64;
            dests.extend(
                neighbors
                    .iter()
                    .filter_map(|&nb| partition.region_of(nb))
                    .filter(|&r| r != from),
            );
            dests.sort_unstable();
            dests.dedup();
            // Per-destination filters, cheapest first: the O(1) incremental
            // delta and the strict-total-order incumbent test rule out almost
            // every candidate, so the expensive receiver-side constraint
            // hypotheticals run only for candidates that would actually be
            // selected. All filters are conjunctive, so evaluation order does
            // not change which move wins.
            for &to in &dests {
                self.counters.inc(CounterKind::TabuMovesEvaluated);
                let delta = partition.move_objective_delta(engine, area, from, to);
                if !beats(delta, area, to, &best) {
                    continue; // cannot beat the incumbent; skip checks
                }
                let aspires = current_h + delta < best_h - 1e-9;
                if tabu.is_tabu(area, to, moves_done) && !aspires {
                    self.counters.inc(CounterKind::TabuRejectedTabu);
                    continue;
                }
                if self.slack_verdict(engine, partition, to).receiver_blocked {
                    self.counters.inc(CounterKind::TabuSlackPruneSkips);
                    continue;
                }
                if !receiver_keeps_constraints(engine, partition, area, to, &mut self.counters) {
                    self.counters.inc(CounterKind::TabuRejectedInfeasible);
                    continue;
                }
                best = Some(Move {
                    area,
                    from,
                    to,
                    delta,
                });
            }
            self.dests = dests;
        }
        self.counters
            .add(CounterKind::NeighborEntriesWalked, walked);
        best
    }

    /// Panics unless the boundary set and every *computed* articulation
    /// cache entry match a from-scratch recomputation (test oracle).
    pub fn assert_consistent(&self, engine: &ConstraintEngine<'_>, partition: &Partition) {
        for area in 0..partition.len() as u32 {
            assert_eq!(
                self.boundary.contains(area),
                is_boundary(engine, partition, area),
                "boundary status of area {area} is stale"
            );
        }
        let graph = engine.instance().graph();
        for id in partition.region_ids() {
            if let Some(Some(cached)) = self.arts.get(id as usize) {
                let fresh = emp_graph::articulation::articulation_points(
                    graph,
                    &partition.region(id).members,
                );
                assert_eq!(*cached, fresh, "articulation cache of region {id} is stale");
            }
        }
    }
}

/// Runs tabu search in place; the partition ends at the best found solution.
pub fn tabu_search(
    engine: &ConstraintEngine<'_>,
    partition: &mut Partition,
    config: &TabuConfig,
) -> TabuStats {
    tabu_search_observed(engine, partition, config, &mut Recorder::noop())
}

/// Debug-build drift check: the incrementally-accumulated objective must
/// stay within 1e-6 (relative) of a fresh recomputation. Invoked at every
/// telemetry span close inside the search (each `resync` span and the final
/// close), not just on the [`RESYNC_INTERVAL`] boundary.
#[cfg(debug_assertions)]
pub(crate) fn debug_check_drift(
    engine: &ConstraintEngine<'_>,
    partition: &Partition,
    current_h: f64,
) {
    let fresh = partition.heterogeneity_with(engine);
    debug_assert!(
        (fresh - current_h).abs() <= 1e-6 * fresh.abs().max(1.0),
        "objective drift {} exceeds 1e-6 (incremental {current_h}, fresh {fresh})",
        (fresh - current_h).abs(),
    );
}

#[cfg(not(debug_assertions))]
#[inline]
pub(crate) fn debug_check_drift(_: &ConstraintEngine<'_>, _: &Partition, _: f64) {}

/// [`tabu_search`] reporting telemetry through `rec`: the per-move
/// heterogeneity **trajectory** (the objective after every applied move,
/// preceded by the initial value), a `resync` span per objective resync, and
/// the neighborhood counters (move accounting, articulation cache traffic,
/// boundary-set watermark). The caller owns the enclosing `"tabu"` span.
pub fn tabu_search_observed(
    engine: &ConstraintEngine<'_>,
    partition: &mut Partition,
    config: &TabuConfig,
    rec: &mut Recorder,
) -> TabuStats {
    match tabu_search_budgeted(
        engine,
        partition,
        config,
        &SolveBudget::unlimited(),
        None,
        rec,
    ) {
        TabuOutcome::Converged(stats) => stats,
        TabuOutcome::Interrupted { .. } => unreachable!("an unlimited budget never interrupts"),
    }
}

/// Mid-search loop state: exactly the variables the budgeted search needs to
/// continue from a poll point, with nothing representation-only — the
/// neighborhood caches are rebuilt cold on resume, which cannot change the
/// chosen moves (selection is a strict total order independent of cache
/// state). Converted to/from [`crate::control::TabuCheckpoint`] by the
/// solver; the floats here are live values, bit-exact because the checkpoint
/// stores their raw IEEE-754 bits.
#[derive(Clone, Debug)]
pub struct TabuResume {
    /// Iterations executed so far.
    pub iterations: usize,
    /// Moves applied so far.
    pub moves: usize,
    /// Consecutive non-improving iterations.
    pub no_improve: usize,
    /// Pre-search objective.
    pub initial: f64,
    /// Incrementally-tracked current objective.
    pub current_h: f64,
    /// Best objective seen so far.
    pub best_h: f64,
    /// Best assignment seen so far.
    pub best_assignment: Vec<Option<RegionId>>,
    /// The expiry-stamp tabu table.
    pub tabu: TabuTable,
}

impl TabuResume {
    /// The "search not yet started" state for a partition: what
    /// [`tabu_search_budgeted`] initializes when no resume state is given.
    /// Used by the solver to checkpoint a solve cut *between* construction
    /// and local search.
    pub fn fresh(
        engine: &ConstraintEngine<'_>,
        partition: &Partition,
        config: &TabuConfig,
    ) -> Self {
        let initial = partition.heterogeneity_with(engine);
        TabuResume {
            iterations: 0,
            moves: 0,
            no_improve: 0,
            initial,
            current_h: initial,
            best_h: initial,
            best_assignment: partition.assignment().to_vec(),
            tabu: TabuTable::with_dimensions(
                config.tenure,
                partition.len(),
                partition.region_slots(),
            ),
        }
    }
}

/// How a budgeted tabu search ended.
pub enum TabuOutcome {
    /// Natural termination; the partition holds the best found solution.
    Converged(TabuStats),
    /// The budget interrupted the search at a poll point. The partition is
    /// left at the **working** state (not the best incumbent) so the caller
    /// can checkpoint it; `state` continues the search byte-identically.
    Interrupted {
        /// Statistics up to the cut (`best` reflects the incumbent).
        stats: TabuStats,
        /// Which budget source fired.
        reason: StopReason,
        /// Loop state to hand back to [`tabu_search_budgeted`].
        state: TabuResume,
    },
}

/// Pushes the local-search gauges and counter/histogram mirrors to the
/// recorder's attached [`LiveSolve`](emp_obs::LiveSolve). No-op without an
/// attached mirror; called every [`LIVE_FLUSH_INTERVAL`] iterations from
/// both tabu paths, never per move.
pub(crate) fn flush_live(
    rec: &mut Recorder,
    budget: &SolveBudget,
    iterations: usize,
    current_h: f64,
    best_h: f64,
    boundary: Option<u64>,
) {
    let Some(live) = rec.live() else { return };
    live.set_iteration(iterations as u64);
    live.set_objective(current_h, best_h);
    if let Some(areas) = boundary {
        live.set_boundary(areas);
    }
    live.set_polls(budget.polls());
    live.set_deadline_remaining(budget.deadline_remaining());
    rec.live_flush();
}

/// [`tabu_search_observed`] under a [`SolveBudget`], optionally continuing
/// from a prior interruption. The budget is polled once per iteration at the
/// loop top — never mid-move — so an interrupted partition is always a valid
/// (contiguous, constraint-satisfying) state. Resuming with the `state` from
/// an [`TabuOutcome::Interrupted`] (or its checkpoint round-trip) continues
/// the exact move sequence of an uninterrupted run.
pub fn tabu_search_budgeted(
    engine: &ConstraintEngine<'_>,
    partition: &mut Partition,
    config: &TabuConfig,
    budget: &SolveBudget,
    resume: Option<TabuResume>,
    rec: &mut Recorder,
) -> TabuOutcome {
    if config.jobs > 1 && config.incremental {
        // Sharded evaluation on a persistent worker pool; selects the exact
        // move sequence of the serial scan (strict total order), so results
        // are byte-identical for any jobs value. The reference
        // (non-incremental) ablation path stays serial by design.
        return crate::tabu_par::tabu_search_parallel(
            engine, partition, config, budget, resume, rec,
        );
    }
    let fresh_start = resume.is_none();
    let TabuResume {
        iterations,
        moves,
        mut no_improve,
        initial,
        mut current_h,
        mut best_h,
        mut best_assignment,
        mut tabu,
    } = resume.unwrap_or_else(|| TabuResume::fresh(engine, partition, config));
    let mut stats = TabuStats {
        iterations,
        moves,
        initial,
        best: best_h,
    };
    let mut state = config
        .incremental
        .then(|| NeighborhoodState::new(engine, partition));
    if fresh_start {
        // A resumed search already emitted the initial trajectory point in
        // its first leg (even when cut before the first iteration), so
        // emitting it again would skew the concatenated trajectory.
        rec.trajectory_point(0, initial);
    }

    while no_improve < config.max_no_improve && stats.iterations < config.max_iterations {
        rec.counters().inc(CounterKind::CancelPolls);
        if let Some(reason) = budget.poll() {
            if reason == StopReason::DeadlineExceeded {
                rec.counters().inc(CounterKind::DeadlineExceeded);
            }
            debug_check_drift(engine, partition, current_h);
            if let Some(s) = state.as_ref() {
                rec.merge_counters(s.counters());
                rec.counters()
                    .add(CounterKind::ScratchEpochRollovers, s.scratch.rollovers());
            }
            stats.best = best_h;
            if rec.has_live() {
                flush_live(rec, budget, stats.iterations, current_h, best_h, None);
            }
            return TabuOutcome::Interrupted {
                stats,
                reason,
                state: TabuResume {
                    iterations: stats.iterations,
                    moves: stats.moves,
                    no_improve,
                    initial,
                    current_h,
                    best_h,
                    best_assignment,
                    tabu,
                },
            };
        }
        stats.iterations += 1;
        if let Some(s) = state.as_ref() {
            // Per-iteration neighborhood width: how many areas sit on a
            // region boundary (the candidate-move universe).
            rec.hists()
                .record(HistKind::TabuBoundary, s.boundary().as_slice().len() as u64);
        }
        let mv = match state.as_mut() {
            Some(s) => s.select_move(engine, partition, &tabu, stats.moves, current_h, best_h),
            None => select_move_reference(
                engine,
                partition,
                &tabu,
                stats.moves,
                current_h,
                best_h,
                rec.counters(),
            ),
        };
        let Some(mv) = mv else {
            break; // no admissible move at all
        };
        partition.move_area(engine, mv.area, mv.to);
        if let Some(s) = state.as_mut() {
            s.on_move_applied(engine, partition, mv);
        }
        stats.moves += 1;
        rec.counters().inc(CounterKind::TabuMovesApplied);
        // |ΔH| in millionths of an objective unit; `as` saturates and maps
        // NaN to 0, so the cast can never panic on a degenerate delta.
        rec.hists().record(
            HistKind::TabuMoveDelta,
            (mv.delta.abs() * 1e6).round() as u64,
        );
        // Forbid the reverse move.
        tabu.forbid(mv.area, mv.from, stats.moves);
        current_h += mv.delta;
        if stats.iterations.is_multiple_of(RESYNC_INTERVAL) {
            // Resync the accumulated objective; drift must stay tiny.
            rec.span_begin("resync", Some((stats.iterations / RESYNC_INTERVAL) as u64));
            rec.counters().inc(CounterKind::ObjectiveResyncs);
            debug_check_drift(engine, partition, current_h);
            current_h = partition.heterogeneity_with(engine);
            rec.span_end();
        }
        rec.trajectory_point(stats.moves as u64, current_h);
        if current_h < best_h - 1e-9 {
            best_h = current_h;
            // Same length every time: overwrite in place, no reallocation.
            best_assignment.copy_from_slice(partition.assignment());
            no_improve = 0;
        } else {
            no_improve += 1;
        }
        if rec.has_live() && stats.iterations.is_multiple_of(LIVE_FLUSH_INTERVAL) {
            flush_live(
                rec,
                budget,
                stats.iterations,
                current_h,
                best_h,
                state.as_ref().map(|s| s.boundary().as_slice().len() as u64),
            );
        }
    }

    // The enclosing span is about to close: verify the incremental objective
    // one last time, wherever the iteration count stopped.
    debug_check_drift(engine, partition, current_h);
    if let Some(s) = state.as_ref() {
        rec.merge_counters(s.counters());
        rec.counters()
            .add(CounterKind::ScratchEpochRollovers, s.scratch.rollovers());
    }

    // Return the best partition encountered.
    if (partition.heterogeneity_with(engine) - best_h).abs() > 1e-9 {
        *partition = Partition::from_assignment(engine, &best_assignment);
    }
    stats.best = best_h;
    TabuOutcome::Converged(stats)
}

/// Reference neighborhood: scans every region × every member and answers
/// connectivity with a BFS per candidate area. Kept as the equivalence
/// oracle for the incremental path and as the DESIGN.md §4.2 ablation
/// baseline (`FactConfig::incremental_tabu = false`). Uses the same strict
/// move order as [`NeighborhoodState::select_move`], so both paths pick the
/// same move from the same partition state.
pub fn select_move_reference(
    engine: &ConstraintEngine<'_>,
    partition: &Partition,
    tabu: &TabuTable,
    moves_done: usize,
    current_h: f64,
    best_h: f64,
    counters: &mut Counters,
) -> Option<Move> {
    let graph = engine.instance().graph();
    let mut best: Option<Move> = None;
    // One scratch for every BFS in this scan (the reference path is the
    // ablation baseline — still O(V+E) per check, but allocation-free).
    let mut scratch = emp_graph::SubsetScratch::new();

    for from in partition.region_ids() {
        let region = partition.region(from);
        if region.members.len() <= 1 {
            continue; // p must not change
        }
        for &area in &region.members {
            // Destination regions adjacent to this area.
            let mut dests: Vec<RegionId> = graph
                .neighbors(area)
                .iter()
                .filter_map(|&nb| partition.region_of(nb))
                .filter(|&r| r != from)
                .collect();
            if dests.is_empty() {
                continue;
            }
            dests.sort_unstable();
            dests.dedup();

            let mut connectivity_checked = false;
            let mut connectivity_ok = false;

            for to in dests {
                counters.inc(CounterKind::TabuMovesEvaluated);
                let delta = partition.move_objective_delta(engine, area, from, to);
                let aspires = current_h + delta < best_h - 1e-9;
                if tabu.is_tabu(area, to, moves_done) && !aspires {
                    counters.inc(CounterKind::TabuRejectedTabu);
                    continue;
                }
                if !beats(delta, area, to, &best) {
                    continue; // cannot beat the incumbent; skip checks
                }
                // Feasibility: donor keeps constraints after removal,
                // receiver keeps them after addition.
                if !move_keeps_constraints(engine, partition, area, from, to, counters) {
                    counters.inc(CounterKind::TabuRejectedInfeasible);
                    continue;
                }
                // Connectivity last (most expensive), computed once per area.
                if !connectivity_checked {
                    counters.inc(CounterKind::BfsFallbacks);
                    connectivity_ok =
                        partition.removal_keeps_connected_with(engine, area, &mut scratch);
                    connectivity_checked = true;
                }
                if !connectivity_ok {
                    counters.inc(CounterKind::TabuRejectedInfeasible);
                    break;
                }
                best = Some(Move {
                    area,
                    from,
                    to,
                    delta,
                });
            }
        }
    }
    best
}

/// Checks both regions' constraints for a hypothetical move without mutating
/// the partition (O(m log k) via the incremental aggregates).
fn move_keeps_constraints(
    engine: &ConstraintEngine<'_>,
    partition: &Partition,
    area: u32,
    from: RegionId,
    to: RegionId,
    counters: &mut Counters,
) -> bool {
    donor_keeps_constraints(engine, partition, area, from, counters)
        && receiver_keeps_constraints(engine, partition, area, to, counters)
}

/// Destination-independent half of [`move_keeps_constraints`]: would the
/// donor region still satisfy every constraint after losing `area`?
pub(crate) fn donor_keeps_constraints(
    engine: &ConstraintEngine<'_>,
    partition: &Partition,
    area: u32,
    from: RegionId,
    counters: &mut Counters,
) -> bool {
    let donor = &partition.region(from).agg;
    for (ci, c) in engine.constraints().iter().enumerate() {
        counters.inc(crate::engine::check_counter(c.aggregate));
        let v = engine.area_value(ci, area);
        match hypothetical_after_removal(engine, donor, ci, v) {
            Some(val) if c.contains(val) => {}
            _ => return false,
        }
    }
    true
}

/// Area-level donor slack gate: would removing this *specific* area
/// provably violate a SUM or AVG constraint of its region? Runs the exact
/// removal arithmetic of [`donor_keeps_constraints`] (same float
/// operations on the same incremental aggregates), restricted to the
/// constraint kinds whose hypothetical is a closed-form O(1) expression —
/// so a `true` here is a proof that the full donor check would reject the
/// area, and skipping it cannot change the selected move. COUNT floors
/// are covered by the region-level [`SlackVerdict`]; MIN/MAX need the
/// order multisets and stay with the memoized full check. Unlike
/// [`donor_keeps_constraints`] this never touches the per-area memo or the
/// `checks_*` counters: it is a prune, not a check.
pub(crate) fn donor_value_blocked(
    engine: &ConstraintEngine<'_>,
    agg: &RegionAgg,
    area: u32,
) -> bool {
    let Some(new_count) = agg.count.checked_sub(1) else {
        return false;
    };
    for (ci, c) in engine.constraints().iter().enumerate() {
        let val = match c.aggregate {
            Aggregate::Sum => agg.sums[c.slot] - engine.area_value(ci, area),
            Aggregate::Avg => {
                if new_count == 0 {
                    continue; // the full check rejects; no proof needed here
                }
                (agg.sums[c.slot] - engine.area_value(ci, area)) / new_count as f64
            }
            Aggregate::Count | Aggregate::Min | Aggregate::Max => continue,
        };
        if !c.contains(val) {
            return true;
        }
    }
    false
}

/// Would the receiver region still satisfy every constraint after gaining
/// `area`?
pub(crate) fn receiver_keeps_constraints(
    engine: &ConstraintEngine<'_>,
    partition: &Partition,
    area: u32,
    to: RegionId,
    counters: &mut Counters,
) -> bool {
    let recv = &partition.region(to).agg;
    for (ci, c) in engine.constraints().iter().enumerate() {
        counters.inc(crate::engine::check_counter(c.aggregate));
        let v = engine.area_value(ci, area);
        if !c.contains(hypothetical_after_addition(engine, recv, ci, v)) {
            return false;
        }
    }
    true
}

fn hypothetical_after_removal(
    engine: &ConstraintEngine<'_>,
    agg: &RegionAgg,
    ci: usize,
    v: f64,
) -> Option<f64> {
    let c = &engine.constraints()[ci];
    let new_count = agg.count.checked_sub(1)?;
    Some(match c.aggregate {
        Aggregate::Count => new_count as f64,
        Aggregate::Sum => agg.sums[c.slot] - v,
        Aggregate::Avg => {
            if new_count == 0 {
                return None;
            }
            (agg.sums[c.slot] - v) / new_count as f64
        }
        Aggregate::Min => agg.multisets[c.slot].min_excluding(v)?,
        Aggregate::Max => agg.multisets[c.slot].max_excluding(v)?,
    })
}

fn hypothetical_after_addition(
    engine: &ConstraintEngine<'_>,
    agg: &RegionAgg,
    ci: usize,
    v: f64,
) -> f64 {
    let c = &engine.constraints()[ci];
    match c.aggregate {
        Aggregate::Count => (agg.count + 1) as f64,
        Aggregate::Sum => agg.sums[c.slot] + v,
        Aggregate::Avg => (agg.sums[c.slot] + v) / (agg.count + 1) as f64,
        Aggregate::Min => agg.multisets[c.slot].min().map_or(v, |m| m.min(v)),
        Aggregate::Max => agg.multisets[c.slot].max().map_or(v, |m| m.max(v)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttributeTable;
    use crate::constraint::{Constraint, ConstraintSet};
    use crate::instance::EmpInstance;
    use emp_graph::ContiguityGraph;

    /// 4x1 path with dissimilarity [0, 0, 10, 10]: the optimal 2-region
    /// partition is {0,1} | {2,3} with H = 0.
    fn line_instance() -> EmpInstance {
        let graph = ContiguityGraph::lattice(4, 1);
        let mut attrs = AttributeTable::new(4);
        attrs.push_column("POP", vec![1.0; 4]).unwrap();
        attrs.push_column("D", vec![0.0, 0.0, 10.0, 10.0]).unwrap();
        EmpInstance::new(graph, attrs, "D").unwrap()
    }

    #[test]
    fn improves_bad_partition_to_optimum() {
        let inst = line_instance();
        let set = ConstraintSet::new().with(Constraint::count(1.0, 3.0).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(4);
        // Suboptimal split {0} | {1,2,3}: H = 0 + (10 + 10 + 0) = 20.
        part.create_region(&eng, &[0]);
        part.create_region(&eng, &[1, 2, 3]);
        assert!((part.heterogeneity_with(&eng) - 20.0).abs() < 1e-9);
        let stats = tabu_search(&eng, &mut part, &TabuConfig::for_instance(4));
        assert!(
            (part.heterogeneity_with(&eng) - 0.0).abs() < 1e-9,
            "H = {}",
            part.heterogeneity_with(&eng)
        );
        assert_eq!(part.p(), 2);
        assert!(stats.best <= stats.initial);
        assert!((stats.improvement().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reference_path_reaches_same_optimum() {
        let inst = line_instance();
        let set = ConstraintSet::new().with(Constraint::count(1.0, 3.0).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let cfg = TabuConfig {
            incremental: false,
            ..TabuConfig::for_instance(4)
        };
        let mut part = Partition::new(4);
        part.create_region(&eng, &[0]);
        part.create_region(&eng, &[1, 2, 3]);
        let stats = tabu_search(&eng, &mut part, &cfg);
        assert!((stats.best - 0.0).abs() < 1e-9);
        assert_eq!(part.p(), 2);
    }

    #[test]
    fn p_is_preserved() {
        let inst = line_instance();
        let set = ConstraintSet::new();
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(4);
        part.create_region(&eng, &[0, 1]);
        part.create_region(&eng, &[2, 3]);
        let p_before = part.p();
        tabu_search(&eng, &mut part, &TabuConfig::for_instance(4));
        assert_eq!(part.p(), p_before);
    }

    #[test]
    fn moves_respect_constraints() {
        // SUM >= 2 with unit weights: no region may shrink below 2 areas.
        let inst = line_instance();
        let set = ConstraintSet::new().with(Constraint::sum("POP", 2.0, f64::INFINITY).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(4);
        part.create_region(&eng, &[0, 1]);
        part.create_region(&eng, &[2, 3]);
        tabu_search(&eng, &mut part, &TabuConfig::for_instance(4));
        for id in part.region_ids() {
            assert!(eng.satisfies_all(&part.region(id).agg));
            assert!(part.region(id).members.len() >= 2);
        }
    }

    #[test]
    fn contiguity_is_preserved() {
        let inst = {
            let graph = ContiguityGraph::lattice(3, 3);
            let mut attrs = AttributeTable::new(9);
            attrs.push_column("POP", vec![1.0; 9]).unwrap();
            attrs
                .push_column("D", (0..9).map(|i| (i % 4) as f64).collect())
                .unwrap();
            EmpInstance::new(graph, attrs, "D").unwrap()
        };
        let set = ConstraintSet::new();
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(9);
        part.create_region(&eng, &[0, 1, 2]);
        part.create_region(&eng, &[3, 4, 5]);
        part.create_region(&eng, &[6, 7, 8]);
        tabu_search(&eng, &mut part, &TabuConfig::for_instance(9));
        for members in part.extract_regions() {
            assert!(emp_graph::subgraph::is_connected_subset(
                inst.graph(),
                &members
            ));
        }
    }

    #[test]
    fn no_moves_when_single_region() {
        let inst = line_instance();
        let set = ConstraintSet::new();
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(4);
        part.create_region(&eng, &[0, 1, 2, 3]);
        let stats = tabu_search(&eng, &mut part, &TabuConfig::for_instance(4));
        assert_eq!(stats.moves, 0);
        assert_eq!(part.p(), 1);
    }

    #[test]
    fn hypothetical_helpers_match_actual() {
        let inst = line_instance();
        let set = ConstraintSet::new()
            .with(Constraint::min("D", f64::NEG_INFINITY, f64::INFINITY).unwrap())
            .with(Constraint::max("D", f64::NEG_INFINITY, f64::INFINITY).unwrap())
            .with(Constraint::avg("D", f64::NEG_INFINITY, f64::INFINITY).unwrap())
            .with(Constraint::sum("D", f64::NEG_INFINITY, f64::INFINITY).unwrap())
            .with(Constraint::count(1.0, f64::INFINITY).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let agg = eng.compute_fresh(&[1, 2, 3]); // D values 0, 10, 10
        for ci in 0..5 {
            let v = eng.area_value(ci, 2);
            let hypo = hypothetical_after_removal(&eng, &agg, ci, v).unwrap();
            let actual = {
                let mut a = agg.clone();
                eng.remove_area(&mut a, 2);
                eng.value(&a, ci)
            };
            assert_eq!(hypo, actual, "removal ci={ci}");
            let v0 = eng.area_value(ci, 0);
            let hypo = hypothetical_after_addition(&eng, &agg, ci, v0);
            let actual = {
                let mut a = agg.clone();
                eng.add_area(&mut a, 0);
                eng.value(&a, ci)
            };
            assert_eq!(hypo, actual, "addition ci={ci}");
        }
    }

    #[test]
    fn compactness_objective_reshapes_regions() {
        use crate::objective::ObjectiveSpec;
        // 4x2 lattice; start with two interleaved snaky regions and a
        // compactness objective on the (x, y) centroids: tabu should move
        // toward two 2x2 blocks (or at least reduce the spread).
        let graph = ContiguityGraph::lattice(4, 2);
        let mut attrs = AttributeTable::new(8);
        attrs.push_column("POP", vec![1.0; 8]).unwrap();
        let xs: Vec<f64> = (0..8).map(|i| (i % 4) as f64).collect();
        let ys: Vec<f64> = (0..8).map(|i| (i / 4) as f64).collect();
        let inst = EmpInstance::new(graph, attrs, "POP")
            .unwrap()
            .with_objective(ObjectiveSpec::compactness(xs, ys).unwrap())
            .unwrap();
        let set = ConstraintSet::new().with(Constraint::count(2.0, 6.0).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(8);
        // Stripes: {0,1,2,3} (top row) and {4,5,6,7} (bottom row): each has
        // x-spread sum |i-j| pairs = 10, y-spread 0 -> total 20.
        part.create_region(&eng, &[0, 1, 2, 3]);
        part.create_region(&eng, &[4, 5, 6, 7]);
        let before = part.heterogeneity_with(&eng);
        assert!((before - 20.0).abs() < 1e-9);
        let stats = tabu_search(&eng, &mut part, &TabuConfig::for_instance(8));
        // Two 2x2 blocks score: per block x-spread 4*|..|: pairs (0,0,1,1):
        // sum |xi-xj| = 4, y-spread = 4 -> 8 per... compute: values x
        // {0,0,1,1}: pairs |0-0|,|0-1|x4,|1-1| = 4; y {0,0,1,1} same = 4;
        // block total 8, two blocks 16.
        assert!(stats.best <= 16.0 + 1e-9, "best = {}", stats.best);
        assert_eq!(part.p(), 2);
    }

    #[test]
    fn balanced_multi_criteria_objective_runs() {
        use crate::objective::{Channel, ObjectiveSpec};
        let graph = ContiguityGraph::lattice(3, 3);
        let mut attrs = AttributeTable::new(9);
        attrs.push_column("POP", vec![1.0; 9]).unwrap();
        let d: Vec<f64> = (0..9).map(|i| (i * i % 7) as f64).collect();
        let xs: Vec<f64> = (0..9).map(|i| (i % 3) as f64).collect();
        let spec = ObjectiveSpec::from_channels(vec![
            Channel {
                name: "dissim".into(),
                values: d,
                weight: 1.0,
            },
            Channel {
                name: "x".into(),
                values: xs,
                weight: 0.5,
            },
        ])
        .unwrap();
        let inst = EmpInstance::new(graph, attrs, "POP")
            .unwrap()
            .with_objective(spec)
            .unwrap();
        let set = ConstraintSet::new().with(Constraint::count(1.0, 5.0).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(9);
        part.create_region(&eng, &[0, 1, 2]);
        part.create_region(&eng, &[3, 4, 5]);
        part.create_region(&eng, &[6, 7, 8]);
        let stats = tabu_search(&eng, &mut part, &TabuConfig::for_instance(9));
        assert!(stats.best <= stats.initial + 1e-9);
        assert_eq!(part.p(), 3);
        // The final score matches a fresh recomputation via the spec.
        let fresh = inst.objective().score(&part.extract_regions());
        assert!((part.heterogeneity_with(&eng) - fresh).abs() < 1e-9);
    }

    #[test]
    fn stats_improvement_handles_zero_initial() {
        // A zero (or non-finite) starting objective makes the relative
        // improvement undefined; the convention is `None`, rendered "n/a".
        let s = TabuStats {
            initial: 0.0,
            best: 0.0,
            ..Default::default()
        };
        assert_eq!(s.improvement(), None);
        let nan = TabuStats {
            initial: f64::NAN,
            best: 0.0,
            ..Default::default()
        };
        assert_eq!(nan.improvement(), None);
    }

    #[test]
    fn tabu_table_matches_fifo_semantics() {
        // Classic FIFO list of tenure 2, replayed against the stamp table.
        let mut t = TabuTable::new(2);
        t.forbid(7, 1, 1); // entry from move 1: active while moves_done < 3
        assert!(t.is_tabu(7, 1, 1));
        assert!(t.is_tabu(7, 1, 2));
        assert!(!t.is_tabu(7, 1, 3));
        assert!(!t.is_tabu(7, 2, 1)); // other destination never forbidden
                                      // Re-forbidding refreshes the stamp (same as a later FIFO push).
        t.forbid(7, 1, 4);
        assert!(t.is_tabu(7, 1, 5));
        assert!(!t.is_tabu(7, 1, 6));
        // Tenure 0 never forbids.
        let mut z = TabuTable::new(0);
        z.forbid(1, 1, 1);
        assert!(!z.is_tabu(1, 1, 1));
    }

    #[test]
    fn boundary_set_insert_remove() {
        let mut b = BoundarySet::new(5);
        b.insert(3);
        b.insert(1);
        b.insert(3); // idempotent
        assert!(b.contains(3) && b.contains(1) && !b.contains(0));
        assert_eq!(b.as_slice().len(), 2);
        b.remove(3);
        assert!(!b.contains(3));
        b.remove(3); // idempotent
        assert_eq!(b.as_slice(), &[1]);
        b.remove(1);
        assert!(b.as_slice().is_empty());
    }

    #[test]
    fn neighborhood_state_tracks_moves() {
        // 3x3 lattice, three rows; move 5 into the top region and check the
        // caches stay consistent with from-scratch recomputation.
        let graph = ContiguityGraph::lattice(3, 3);
        let mut attrs = AttributeTable::new(9);
        attrs.push_column("POP", vec![1.0; 9]).unwrap();
        attrs
            .push_column("D", (0..9).map(|i| i as f64).collect())
            .unwrap();
        let inst = EmpInstance::new(graph, attrs, "D").unwrap();
        let set = ConstraintSet::new();
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(9);
        let top = part.create_region(&eng, &[0, 1, 2]);
        let mid = part.create_region(&eng, &[3, 4, 5]);
        let _bot = part.create_region(&eng, &[6, 7, 8]);
        let mut state = NeighborhoodState::new(&eng, &part);
        state.assert_consistent(&eng, &part);
        // Every area touches a foreign region on this 3-stripe partition.
        assert_eq!(state.boundary().as_slice().len(), 9);
        // Warm the articulation caches, then apply a move.
        assert_eq!(state.articulation_points(&eng, &part, mid), &[4]);
        let mv = Move {
            area: 5,
            from: mid,
            to: top,
            delta: 0.0,
        };
        part.move_area(&eng, 5, top);
        state.on_move_applied(&eng, &part, mv);
        state.assert_consistent(&eng, &part);
        // Mid is now a 2-member path {3,4}: no articulation points.
        assert!(state.articulation_points(&eng, &part, mid).is_empty());
        // Top is now the path 0-1-2-5: 1 and 2 are cut vertices.
        assert_eq!(state.articulation_points(&eng, &part, top), &[1, 2]);
    }

    #[test]
    fn incremental_and_reference_agree_step_by_step() {
        // Drive a full search manually, asserting at every iteration that
        // the incremental neighborhood picks the same move as the
        // full-scan/BFS reference from the same state.
        let graph = ContiguityGraph::lattice(4, 4);
        let mut attrs = AttributeTable::new(16);
        attrs.push_column("POP", vec![1.0; 16]).unwrap();
        attrs
            .push_column("D", (0..16).map(|i| ((i * 7) % 5) as f64).collect())
            .unwrap();
        let inst = EmpInstance::new(graph, attrs, "D").unwrap();
        let set = ConstraintSet::new().with(Constraint::count(1.0, 10.0).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(16);
        part.create_region(&eng, &[0, 1, 2, 3]);
        part.create_region(&eng, &[4, 5, 6, 7]);
        part.create_region(&eng, &[8, 9, 10, 11]);
        part.create_region(&eng, &[12, 13, 14, 15]);

        let mut state = NeighborhoodState::new(&eng, &part);
        let mut tabu = TabuTable::new(10);
        let mut current_h = part.heterogeneity_with(&eng);
        let best_h = current_h;
        let mut moves = 0usize;
        for _ in 0..40 {
            let inc = state.select_move(&eng, &part, &tabu, moves, current_h, best_h);
            let mut ref_counters = Counters::new();
            let reference = select_move_reference(
                &eng,
                &part,
                &tabu,
                moves,
                current_h,
                best_h,
                &mut ref_counters,
            );
            assert_eq!(inc, reference, "divergent move at step {moves}");
            let Some(mv) = inc else { break };
            part.move_area(&eng, mv.area, mv.to);
            state.on_move_applied(&eng, &part, mv);
            state.assert_consistent(&eng, &part);
            moves += 1;
            tabu.forbid(mv.area, mv.from, moves);
            current_h += mv.delta;
        }
        assert!(moves > 0, "search should find at least one move");
    }

    #[test]
    fn observed_search_records_trajectory_and_counters() {
        let inst = line_instance();
        let set = ConstraintSet::new().with(Constraint::count(1.0, 3.0).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(4);
        part.create_region(&eng, &[0]);
        part.create_region(&eng, &[1, 2, 3]);
        let sink = emp_obs::InMemorySink::new();
        let handle = sink.handle();
        let mut rec = Recorder::with_sink(Box::new(sink));
        rec.span_begin("tabu", None);
        let stats = tabu_search_observed(&eng, &mut part, &TabuConfig::for_instance(4), &mut rec);
        rec.span_end();
        rec.finish();

        let trace: Vec<f64> = {
            let data = handle.lock().unwrap();
            data.trajectory.iter().map(|&(_, h)| h).collect()
        };
        assert_eq!(trace.len(), stats.moves + 1);
        assert!((trace[0] - stats.initial).abs() < 1e-9);
        let min = trace.iter().copied().fold(f64::INFINITY, f64::min);
        assert!((min - stats.best).abs() < 1e-9);
        // The same summary is available without any sink buffering.
        assert_eq!(rec.trajectory().points(), trace.len() as u64);
        assert_eq!(rec.trajectory().best(), Some(stats.best));

        // Counter invariants: every applied move was evaluated first, and
        // the articulation cache answered exactly its queries.
        let c = rec.counters_snapshot();
        assert!(c.get(CounterKind::TabuMovesApplied) as usize == stats.moves);
        assert!(c.get(CounterKind::TabuMovesApplied) <= c.get(CounterKind::TabuMovesEvaluated));
        assert_eq!(
            c.get(CounterKind::ArticulationCacheHits) + c.get(CounterKind::ArticulationCacheMisses),
            c.get(CounterKind::ArticulationQueries)
        );
    }
}
