//! Final solver output types.

use crate::engine::ConstraintEngine;
use crate::error::EmpError;
use crate::instance::EmpInstance;
use crate::partition::Partition;

/// The EMP output: `p` regions plus the unassigned set `U_0` (paper §III).
#[derive(Clone, Debug, PartialEq)]
pub struct Solution {
    /// Member areas per region (each sorted ascending; regions ordered by
    /// their smallest member, so output is deterministic).
    pub regions: Vec<Vec<u32>>,
    /// For each area, the index into `regions` it belongs to, or `None` for
    /// `U_0`.
    pub assignment: Vec<Option<u32>>,
    /// Areas in `U_0`, sorted ascending.
    pub unassigned: Vec<u32>,
    /// Total heterogeneity in the unordered-pair convention
    /// (half the paper's Eq. 1 double-sum value).
    pub heterogeneity: f64,
}

impl Solution {
    /// Number of regions `p`.
    #[inline]
    pub fn p(&self) -> usize {
        self.regions.len()
    }

    /// The paper's Eq. 1 heterogeneity (each pair counted twice).
    #[inline]
    pub fn paper_heterogeneity(&self) -> f64 {
        2.0 * self.heterogeneity
    }

    /// Fraction of areas left unassigned.
    pub fn unassigned_fraction(&self) -> f64 {
        if self.assignment.is_empty() {
            0.0
        } else {
            self.unassigned.len() as f64 / self.assignment.len() as f64
        }
    }

    /// Rebuilds a full solution from bare region member lists.
    ///
    /// This is the reconstruction path for serialized solutions (the
    /// `emp-oracle` corpus persists only the region structure): members are
    /// sorted ascending, regions are ordered by their smallest member (the
    /// same canonical form [`Solution::from_partition`] produces),
    /// `assignment` / `unassigned` are derived, and the objective score is
    /// recomputed fresh from the instance. Structural errors (out-of-range
    /// areas, duplicates, empty regions) are rejected; contiguity and
    /// constraint satisfaction are [`crate::validate::validate_solution`]'s
    /// job.
    pub fn from_regions(instance: &EmpInstance, regions: Vec<Vec<u32>>) -> Result<Self, EmpError> {
        let n = instance.len();
        let mut regions = regions;
        let mut assignment: Vec<Option<u32>> = vec![None; n];
        for members in &mut regions {
            if members.is_empty() {
                return Err(EmpError::Infeasible {
                    reasons: vec!["empty region in region list".into()],
                });
            }
            members.sort_unstable();
            for &a in members.iter() {
                if a as usize >= n {
                    return Err(EmpError::Infeasible {
                        reasons: vec![format!("area {a} out of range (n = {n})")],
                    });
                }
                if assignment[a as usize].is_some() {
                    return Err(EmpError::Infeasible {
                        reasons: vec![format!("area {a} appears in more than one region")],
                    });
                }
                assignment[a as usize] = Some(0); // placeholder, renumbered below
            }
        }
        regions.sort_by_key(|m| m[0]);
        for (ri, members) in regions.iter().enumerate() {
            for &a in members {
                assignment[a as usize] = Some(ri as u32);
            }
        }
        let unassigned: Vec<u32> = assignment
            .iter()
            .enumerate()
            .filter_map(|(a, r)| r.is_none().then_some(a as u32))
            .collect();
        let heterogeneity = instance.objective().score(&regions);
        Ok(Solution {
            regions,
            assignment,
            unassigned,
            heterogeneity,
        })
    }

    /// Builds a solution snapshot from a working partition.
    pub fn from_partition(engine: &ConstraintEngine<'_>, partition: &Partition) -> Self {
        let regions = partition.extract_regions();
        let mut assignment = vec![None; partition.len()];
        for (idx, members) in regions.iter().enumerate() {
            for &a in members {
                assignment[a as usize] = Some(idx as u32);
            }
        }
        let unassigned: Vec<u32> = assignment
            .iter()
            .enumerate()
            .filter_map(|(a, r)| r.is_none().then_some(a as u32))
            .collect();
        Solution {
            regions,
            assignment,
            unassigned,
            heterogeneity: partition.heterogeneity_with(engine),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttributeTable;
    use crate::constraint::ConstraintSet;
    use crate::engine::ConstraintEngine;
    use crate::instance::EmpInstance;
    use emp_graph::ContiguityGraph;

    #[test]
    fn snapshot_from_partition() {
        let graph = ContiguityGraph::lattice(4, 1);
        let mut attrs = AttributeTable::new(4);
        attrs.push_column("D", vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let inst = EmpInstance::new(graph, attrs, "D").unwrap();
        let set = ConstraintSet::new();
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(4);
        part.create_region(&eng, &[1, 0]);
        part.create_region(&eng, &[3]);
        let sol = Solution::from_partition(&eng, &part);
        assert_eq!(sol.p(), 2);
        assert_eq!(sol.regions, vec![vec![0, 1], vec![3]]);
        assert_eq!(sol.assignment, vec![Some(0), Some(0), None, Some(1)]);
        assert_eq!(sol.unassigned, vec![2]);
        assert_eq!(sol.heterogeneity, 1.0);
        assert_eq!(sol.paper_heterogeneity(), 2.0);
        assert_eq!(sol.unassigned_fraction(), 0.25);
    }

    #[test]
    fn from_regions_reconstructs_canonical_form() {
        let graph = ContiguityGraph::lattice(4, 1);
        let mut attrs = AttributeTable::new(4);
        attrs.push_column("D", vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let inst = EmpInstance::new(graph, attrs, "D").unwrap();
        // Unsorted members, regions out of canonical order.
        let sol = Solution::from_regions(&inst, vec![vec![3], vec![1, 0]]).unwrap();
        assert_eq!(sol.regions, vec![vec![0, 1], vec![3]]);
        assert_eq!(sol.assignment, vec![Some(0), Some(0), None, Some(1)]);
        assert_eq!(sol.unassigned, vec![2]);
        assert_eq!(sol.heterogeneity, 1.0);
    }

    #[test]
    fn from_regions_rejects_malformed_input() {
        let graph = ContiguityGraph::lattice(3, 1);
        let mut attrs = AttributeTable::new(3);
        attrs.push_column("D", vec![1.0; 3]).unwrap();
        let inst = EmpInstance::new(graph, attrs, "D").unwrap();
        assert!(Solution::from_regions(&inst, vec![vec![]]).is_err());
        assert!(Solution::from_regions(&inst, vec![vec![7]]).is_err());
        assert!(Solution::from_regions(&inst, vec![vec![0], vec![0]]).is_err());
    }

    #[test]
    fn empty_solution() {
        let sol = Solution {
            regions: vec![],
            assignment: vec![],
            unassigned: vec![],
            heterogeneity: 0.0,
        };
        assert_eq!(sol.p(), 0);
        assert_eq!(sol.unassigned_fraction(), 0.0);
    }
}
