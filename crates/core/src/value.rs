//! Totally-ordered `f64` wrapper and a counted multiset over it.
//!
//! MIN/MAX aggregates must survive both area insertion *and* removal, so
//! regions keep a counted multiset of the constrained attribute's values.
//! Attribute values are validated to be finite at instance construction,
//! which makes the total order safe.

use std::collections::BTreeMap;

/// An `f64` with a total order. Constructing from NaN is a logic error
/// (attribute tables reject non-finite values).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        debug_assert!(!self.0.is_nan() && !other.0.is_nan());
        self.0
            .partial_cmp(&other.0)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

/// A counted multiset of `f64` values supporting O(log k) insert/remove and
/// O(log k) min/max queries.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Multiset {
    counts: BTreeMap<OrdF64, u32>,
    len: usize,
}

impl Multiset {
    /// An empty multiset.
    pub fn new() -> Self {
        Multiset::default()
    }

    /// Number of stored values (with multiplicity).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the multiset is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts one occurrence of `v`.
    pub fn insert(&mut self, v: f64) {
        debug_assert!(v.is_finite());
        *self.counts.entry(OrdF64(v)).or_insert(0) += 1;
        self.len += 1;
    }

    /// Removes one occurrence of `v`. Panics if `v` is absent (callers only
    /// remove values they previously inserted).
    pub fn remove(&mut self, v: f64) {
        let key = OrdF64(v);
        let c = self
            .counts
            .get_mut(&key)
            .unwrap_or_else(|| panic!("multiset: removing absent value {v}"));
        *c -= 1;
        if *c == 0 {
            self.counts.remove(&key);
        }
        self.len -= 1;
    }

    /// Smallest value, if any.
    #[inline]
    pub fn min(&self) -> Option<f64> {
        self.counts.keys().next().map(|k| k.0)
    }

    /// Largest value, if any.
    #[inline]
    pub fn max(&self) -> Option<f64> {
        self.counts.keys().next_back().map(|k| k.0)
    }

    /// Merges another multiset into this one.
    pub fn absorb(&mut self, other: &Multiset) {
        for (k, &c) in &other.counts {
            *self.counts.entry(*k).or_insert(0) += c;
        }
        self.len += other.len;
    }

    /// Number of occurrences of `v`.
    pub fn count(&self, v: f64) -> u32 {
        self.counts.get(&OrdF64(v)).copied().unwrap_or(0)
    }

    /// Minimum after hypothetically removing one occurrence of `v`
    /// (`None` if that removal would empty the multiset). `v` must be present.
    pub fn min_excluding(&self, v: f64) -> Option<f64> {
        debug_assert!(self.count(v) > 0);
        let mut iter = self.counts.iter();
        let (&first, &c) = iter.next()?;
        if first.0 != v || c > 1 {
            return Some(first.0);
        }
        iter.next().map(|(k, _)| k.0)
    }

    /// Maximum after hypothetically removing one occurrence of `v`
    /// (`None` if that removal would empty the multiset). `v` must be present.
    pub fn max_excluding(&self, v: f64) -> Option<f64> {
        debug_assert!(self.count(v) > 0);
        let mut iter = self.counts.iter().rev();
        let (&last, &c) = iter.next()?;
        if last.0 != v || c > 1 {
            return Some(last.0);
        }
        iter.next().map(|(k, _)| k.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ord_f64_total_order() {
        let mut v = vec![OrdF64(3.0), OrdF64(-1.0), OrdF64(2.5)];
        v.sort();
        assert_eq!(v, vec![OrdF64(-1.0), OrdF64(2.5), OrdF64(3.0)]);
    }

    #[test]
    fn insert_remove_minmax() {
        let mut m = Multiset::new();
        assert!(m.is_empty());
        assert_eq!(m.min(), None);
        m.insert(5.0);
        m.insert(2.0);
        m.insert(5.0);
        assert_eq!(m.len(), 3);
        assert_eq!(m.min(), Some(2.0));
        assert_eq!(m.max(), Some(5.0));
        assert_eq!(m.count(5.0), 2);
        m.remove(2.0);
        assert_eq!(m.min(), Some(5.0));
        m.remove(5.0);
        assert_eq!(m.len(), 1);
        assert_eq!(m.max(), Some(5.0));
        m.remove(5.0);
        assert!(m.is_empty());
    }

    #[test]
    #[should_panic(expected = "removing absent value")]
    fn remove_absent_panics() {
        let mut m = Multiset::new();
        m.insert(1.0);
        m.remove(2.0);
    }

    #[test]
    fn excluding_queries() {
        let mut m = Multiset::new();
        for v in [2.0, 2.0, 5.0, 9.0] {
            m.insert(v);
        }
        assert_eq!(m.min_excluding(2.0), Some(2.0)); // duplicate remains
        assert_eq!(m.min_excluding(5.0), Some(2.0));
        assert_eq!(m.max_excluding(9.0), Some(5.0));
        assert_eq!(m.max_excluding(2.0), Some(9.0));
        let mut single = Multiset::new();
        single.insert(7.0);
        assert_eq!(single.min_excluding(7.0), None);
        assert_eq!(single.max_excluding(7.0), None);
    }

    #[test]
    fn absorb_merges_counts() {
        let mut a = Multiset::new();
        a.insert(1.0);
        a.insert(2.0);
        let mut b = Multiset::new();
        b.insert(2.0);
        b.insert(3.0);
        a.absorb(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.count(2.0), 2);
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(3.0));
    }
}
