//! The FaCT solver: orchestrates the feasibility, construction, and local
//! search phases (paper §V).

use crate::adjust::monotonic_adjustments_counted;
use crate::constraint::ConstraintSet;
use crate::control::{
    Checkpoint, CheckpointPhase, Progress, SolveBudget, StopReason, TabuCheckpoint,
};
use crate::engine::ConstraintEngine;
use crate::error::EmpError;
use crate::feasibility::{feasibility_phase, FeasibilityReport};
use crate::grow::region_growing_counted;
use crate::instance::EmpInstance;
use crate::partition::Partition;
use crate::solution::Solution;
use crate::tabu::{
    tabu_search_budgeted, tabu_search_observed, TabuConfig, TabuOutcome, TabuResume, TabuStats,
    TabuTable,
};
use emp_obs::{CounterKind, Counters, Recorder, TrajectorySummary};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// FaCT tuning parameters. Defaults follow the paper's experimental setup
/// (§VII-A): random area pickup, AVG merge limit 3, tabu tenure 10,
/// `max_no_improve = n`.
#[derive(Clone, Debug)]
pub struct FactConfig {
    /// Construction iterations; the partition with the highest `p` is kept.
    pub construction_iterations: usize,
    /// Merge-trial limit per area in Substep 2.2 round 2.
    pub merge_limit: usize,
    /// Tabu list length.
    pub tabu_tenure: usize,
    /// Maximum non-improving tabu iterations (`None` = number of areas).
    pub max_no_improve: Option<usize>,
    /// Hard cap on total tabu iterations (`None` = the [`TabuConfig`]
    /// default of `20 n`; the paper observes ~`2 n` in practice).
    pub max_tabu_iterations: Option<usize>,
    /// Whether to run the local search phase at all.
    pub local_search: bool,
    /// Use the incremental tabu neighborhood (boundary-area set + cached
    /// per-region articulation points). `false` falls back to the
    /// full-scan + BFS-per-candidate reference path — same moves, slower;
    /// kept as the DESIGN.md §4.2 ablation baseline.
    pub incremental_tabu: bool,
    /// RNG seed (construction iteration `i` uses `seed + i`).
    pub seed: u64,
    /// Run construction iterations on scoped threads (paper §VIII future
    /// work: parallelization).
    pub parallel: bool,
    /// Worker threads for sharded tabu move evaluation (1 = the serial
    /// local-search path; results are identical either way, see DESIGN.md
    /// §12). CLIs resolve their `--jobs`/`EMP_JOBS` conventions before
    /// setting this.
    pub jobs: usize,
}

impl Default for FactConfig {
    fn default() -> Self {
        FactConfig {
            construction_iterations: 3,
            merge_limit: 3,
            tabu_tenure: 10,
            max_no_improve: None,
            max_tabu_iterations: None,
            local_search: true,
            incremental_tabu: true,
            seed: 0xE5_1D,
            parallel: false,
            jobs: 1,
        }
    }
}

impl FactConfig {
    /// A config with a specific seed and defaults elsewhere.
    pub fn seeded(seed: u64) -> Self {
        FactConfig {
            seed,
            ..Default::default()
        }
    }
}

/// Wall-clock timings of the three phases, in seconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// Feasibility phase.
    pub feasibility: f64,
    /// Construction phase (all iterations).
    pub construction: f64,
    /// Local search phase.
    pub local_search: f64,
}

impl PhaseTimings {
    /// Total runtime.
    pub fn total(&self) -> f64 {
        self.feasibility + self.construction + self.local_search
    }
}

/// Everything FaCT reports back: the solution, the feasibility analysis
/// (which the paper surfaces to let users tune data or query), per-phase
/// timings, local-search statistics, and the telemetry counters accumulated
/// by this solve.
#[derive(Clone, Debug)]
pub struct SolveReport {
    /// The final solution.
    pub solution: Solution,
    /// Feasibility phase output.
    pub feasibility: FeasibilityReport,
    /// Heterogeneity before the local search (unordered-pair convention).
    pub heterogeneity_before: f64,
    /// Tabu statistics (zeroed when local search is disabled).
    pub tabu: TabuStats,
    /// Phase timings.
    pub timings: PhaseTimings,
    /// Telemetry counters accumulated during this solve (this solve only,
    /// even when the recorder is reused).
    pub counters: Counters,
    /// Local-search objective trajectory summary (empty when the local
    /// search was skipped).
    pub trajectory: TrajectorySummary,
}

impl SolveReport {
    /// Number of regions.
    pub fn p(&self) -> usize {
        self.solution.p()
    }

    /// Relative heterogeneity improvement achieved by the local search,
    /// derived from the telemetry trajectory. `None` when the local search
    /// never ran or the initial objective was zero/non-finite (see
    /// `DESIGN.md` §6); render as `n/a`, never a fake `0`.
    pub fn improvement(&self) -> Option<f64> {
        self.trajectory.improvement()
    }
}

/// Solves an EMP instance with FaCT.
///
/// Returns `Err(EmpError::Infeasible)` when the feasibility phase proves no
/// valid region can exist; constraint/attribute mismatches surface as their
/// respective errors.
pub fn solve(
    instance: &EmpInstance,
    constraints: &ConstraintSet,
    config: &FactConfig,
) -> Result<SolveReport, EmpError> {
    solve_observed(instance, constraints, config, &mut Recorder::noop())
}

/// [`solve`] reporting telemetry through `rec`: a `solve` span wrapping
/// `feasibility`, one `construct_iter` span per construction iteration (with
/// nested `grow`/`adjust` spans on the serial path), and a `tabu` span with
/// `resync` children plus the per-move objective trajectory.
///
/// With a parallel construction phase each worker owns a private noop
/// recorder; the parent folds the per-thread counters in at join time as
/// external `construct_iter` spans, so the hot path takes no locks (the
/// nested `grow`/`adjust` breakdown is not available in parallel mode).
pub fn solve_observed(
    instance: &EmpInstance,
    constraints: &ConstraintSet,
    config: &FactConfig,
    rec: &mut Recorder,
) -> Result<SolveReport, EmpError> {
    let engine = ConstraintEngine::compile(instance, constraints)?;
    let counters_at_entry = rec.counters_snapshot();
    rec.span_begin("solve", None);

    // Phase 1: feasibility.
    if let Some(live) = rec.live() {
        live.set_phase(emp_obs::SolvePhase::Feasibility);
    }
    rec.span_begin("feasibility", None);
    let feasibility = feasibility_phase(&engine);
    let feasibility_time = rec.span_end();
    if feasibility.is_infeasible() {
        rec.span_end(); // close "solve"
        if let Some(live) = rec.live() {
            live.mark_done();
        }
        rec.live_flush();
        return Err(EmpError::Infeasible {
            reasons: feasibility.infeasible_reasons(),
        });
    }
    let mut eligible = vec![true; instance.len()];
    for &a in &feasibility.invalid_areas {
        eligible[a as usize] = false;
    }

    // Phase 2: construction (multiple iterations, keep max p; ties broken by
    // fewer unassigned areas, then lower heterogeneity).
    if let Some(live) = rec.live() {
        live.set_phase(emp_obs::SolvePhase::Construction);
    }
    let t1 = Instant::now();
    let iterations = config.construction_iterations.max(1);
    let best = if config.parallel && iterations > 1 {
        construct_parallel(&engine, &feasibility, &eligible, config, iterations, rec)
    } else {
        construct_serial(&engine, &feasibility, &eligible, config, iterations, rec)
    };
    let mut partition = best.expect("at least one construction iteration");
    let construction_time = t1.elapsed().as_secs_f64();
    let heterogeneity_before = partition.heterogeneity_with(&engine);
    if let Some(live) = rec.live() {
        live.set_regions(partition.region_ids().count() as u64);
        live.set_objective(heterogeneity_before, heterogeneity_before);
    }
    rec.live_flush();

    // Phase 3: local search.
    if let Some(live) = rec.live() {
        live.set_phase(emp_obs::SolvePhase::LocalSearch);
    }
    let t2 = Instant::now();
    let tabu = if config.local_search {
        let tabu_cfg = tabu_config_for(config, instance.len());
        rec.span_begin("tabu", None);
        let stats = tabu_search_observed(&engine, &mut partition, &tabu_cfg, rec);
        rec.span_end();
        stats
    } else {
        TabuStats {
            initial: heterogeneity_before,
            best: heterogeneity_before,
            ..Default::default()
        }
    };
    let local_search_time = t2.elapsed().as_secs_f64();

    rec.span_end(); // close "solve"
    if let Some(live) = rec.live() {
        live.set_stop_reason(StopReason::Completed.name());
        live.mark_done();
    }
    rec.live_flush();
    let counters = rec.counters_snapshot().delta_since(&counters_at_entry);
    let trajectory = rec.take_trajectory();

    Ok(SolveReport {
        solution: Solution::from_partition(&engine, &partition),
        feasibility,
        heterogeneity_before,
        tabu,
        timings: PhaseTimings {
            feasibility: feasibility_time,
            construction: construction_time,
            local_search: local_search_time,
        },
        counters,
        trajectory,
    })
}

/// One construction iteration: region growing then monotonic adjustments.
/// The caller wraps it in a `construct_iter` span; the nested `grow` /
/// `adjust` spans live here.
fn construct_once(
    engine: &ConstraintEngine<'_>,
    feasibility: &FeasibilityReport,
    eligible: &[bool],
    merge_limit: usize,
    seed: u64,
    rec: &mut Recorder,
) -> Partition {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut partition = Partition::new(engine.instance().len());
    rec.span_begin("grow", None);
    region_growing_counted(
        engine,
        &mut partition,
        &feasibility.seeds,
        eligible,
        merge_limit,
        &mut rng,
        rec.counters(),
    );
    rec.span_end();
    rec.span_begin("adjust", None);
    monotonic_adjustments_counted(engine, &mut partition, &mut rng, rec.counters());
    rec.span_end();
    partition
}

/// Ranks construction outcomes: higher p, then fewer unassigned, then lower
/// heterogeneity.
fn better(engine: &ConstraintEngine<'_>, a: &Partition, b: &Partition) -> bool {
    let ua = a.unassigned_count();
    let ub = b.unassigned_count();
    (
        a.p(),
        std::cmp::Reverse(ua),
        std::cmp::Reverse(OrdKey(a.heterogeneity_with(engine))),
    ) > (
        b.p(),
        std::cmp::Reverse(ub),
        std::cmp::Reverse(OrdKey(b.heterogeneity_with(engine))),
    )
}

#[derive(PartialEq, PartialOrd)]
struct OrdKey(f64);
impl Eq for OrdKey {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for OrdKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).unwrap_or(std::cmp::Ordering::Equal)
    }
}

fn construct_serial(
    engine: &ConstraintEngine<'_>,
    feasibility: &FeasibilityReport,
    eligible: &[bool],
    config: &FactConfig,
    iterations: usize,
    rec: &mut Recorder,
) -> Option<Partition> {
    let mut best: Option<Partition> = None;
    for i in 0..iterations {
        rec.span_begin("construct_iter", Some(i as u64));
        let cand = construct_once(
            engine,
            feasibility,
            eligible,
            config.merge_limit,
            config.seed.wrapping_add(i as u64),
            rec,
        );
        rec.span_end();
        if best.as_ref().is_none_or(|b| better(engine, &cand, b)) {
            best = Some(cand);
        }
    }
    best
}

fn construct_parallel(
    engine: &ConstraintEngine<'_>,
    feasibility: &FeasibilityReport,
    eligible: &[bool],
    config: &FactConfig,
    iterations: usize,
    rec: &mut Recorder,
) -> Option<Partition> {
    // Each worker owns a private recorder backed by a `BufferSink` and
    // opens its own `construct_iter` span, so the nested grow/adjust spans
    // land at the same relative depth the serial path produces. Counters
    // are merged and the buffered events replayed in iteration order after
    // the join (no atomics, no contention on the hot path), so an observed
    // parallel construction emits exactly the serial event stream.
    let results = crossbeam::thread::scope(|scope| {
        // The intermediate collect is the fan-out: all handles must exist
        // before the first join, or the map chain would run serially.
        #[allow(clippy::needless_collect)]
        let handles: Vec<_> = (0..iterations)
            .map(|i| {
                let seed = config.seed.wrapping_add(i as u64);
                let merge_limit = config.merge_limit;
                scope.spawn(move |_| {
                    let sink = emp_obs::BufferSink::new();
                    let events = sink.handle();
                    let mut worker = Recorder::with_sink(Box::new(sink));
                    worker.span_begin("construct_iter", Some(i as u64));
                    let cand = construct_once(
                        engine,
                        feasibility,
                        eligible,
                        merge_limit,
                        seed,
                        &mut worker,
                    );
                    worker.span_end();
                    (
                        cand,
                        worker.counters_snapshot(),
                        worker.hists_snapshot(),
                        events,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("construction thread panicked"))
            .collect::<Vec<_>>()
    })
    .expect("crossbeam scope");
    let mut best: Option<Partition> = None;
    for (cand, counters, hists, events) in results {
        rec.merge_counters(&counters);
        // The worker histograms already hold the construct_iter, grow and
        // adjust span durations (its own span_end recorded them), so the
        // merge reproduces the serial path's histogram stream.
        rec.merge_hists(&hists);
        rec.replay_buffered(&events.lock().unwrap());
        if best.as_ref().is_none_or(|b| better(engine, &cand, b)) {
            best = Some(cand);
        }
    }
    best
}

/// The [`TabuConfig`] a [`FactConfig`] implies for an `n`-area instance.
fn tabu_config_for(config: &FactConfig, n: usize) -> TabuConfig {
    let mut tabu_cfg = TabuConfig {
        tenure: config.tabu_tenure,
        max_no_improve: config.max_no_improve.unwrap_or(n),
        incremental: config.incremental_tabu,
        jobs: config.jobs.max(1),
        ..TabuConfig::for_instance(n)
    };
    if let Some(cap) = config.max_tabu_iterations {
        tabu_cfg.max_iterations = cap;
    }
    tabu_cfg
}

/// A budget-bounded solve's result. `report.solution` is always the best
/// valid incumbent found so far — even under a zero budget it is a
/// `validate`-clean (possibly all-unassigned, `p = 0`) solution.
#[derive(Clone, Debug)]
pub struct SolveOutcome {
    /// The solve report built around the incumbent solution.
    pub report: SolveReport,
    /// Why the solve returned.
    pub stop_reason: StopReason,
    /// Phase-level progress at the cut (or at completion).
    pub progress: Progress,
    /// Resume state; `None` when the solve ran to completion.
    pub checkpoint: Option<Checkpoint>,
}

/// [`solve`] under a [`SolveBudget`]: polls the budget at iteration
/// granularity (never mid-move) and, when interrupted, returns the best
/// valid incumbent plus a [`Checkpoint`] from which [`resume`] continues
/// byte-identically to an uninterrupted run.
///
/// The budgeted path always runs construction serially — parallel/serial
/// construction equivalence is property-tested elsewhere, so the results
/// match [`solve`] with `parallel: false` (checkpoints cut *between*
/// iterations, which a work-stealing schedule cannot honor reproducibly).
pub fn solve_budgeted(
    instance: &EmpInstance,
    constraints: &ConstraintSet,
    config: &FactConfig,
    budget: &SolveBudget,
) -> Result<SolveOutcome, EmpError> {
    solve_budgeted_observed(instance, constraints, config, budget, &mut Recorder::noop())
}

/// [`solve_budgeted`] reporting telemetry through `rec`. On top of the
/// [`solve_observed`] spans, the closing `solve` span carries a
/// `stop_reason` note (the [`StopReason::code`]), every budget poll bumps
/// `cancel_polls`, a fired deadline bumps `deadline_exceeded`, and the
/// serialized size of an emitted checkpoint is recorded in the
/// `checkpoint_bytes` gauge.
pub fn solve_budgeted_observed(
    instance: &EmpInstance,
    constraints: &ConstraintSet,
    config: &FactConfig,
    budget: &SolveBudget,
    rec: &mut Recorder,
) -> Result<SolveOutcome, EmpError> {
    run_budgeted(instance, constraints, config, budget, None, rec)
}

/// Continues an interrupted [`solve_budgeted`] from its checkpoint. The
/// instance, constraints, and config must be the ones the checkpoint was
/// cut from (`seed`/`areas` are verified; a mismatch is
/// [`EmpError::BadCheckpoint`]). The continuation replays the exact state
/// of the cut, so the concatenation of the interrupted and resumed legs is
/// byte-identical to one uninterrupted run.
pub fn resume(
    instance: &EmpInstance,
    constraints: &ConstraintSet,
    config: &FactConfig,
    budget: &SolveBudget,
    checkpoint: &Checkpoint,
) -> Result<SolveOutcome, EmpError> {
    resume_observed(
        instance,
        constraints,
        config,
        budget,
        checkpoint,
        &mut Recorder::noop(),
    )
}

/// [`resume`] reporting telemetry through `rec`.
pub fn resume_observed(
    instance: &EmpInstance,
    constraints: &ConstraintSet,
    config: &FactConfig,
    budget: &SolveBudget,
    checkpoint: &Checkpoint,
    rec: &mut Recorder,
) -> Result<SolveOutcome, EmpError> {
    if checkpoint.seed != config.seed {
        return Err(EmpError::BadCheckpoint {
            message: format!(
                "checkpoint was cut under seed {}, config has seed {}",
                checkpoint.seed, config.seed
            ),
        });
    }
    if checkpoint.areas != instance.len() {
        return Err(EmpError::BadCheckpoint {
            message: format!(
                "checkpoint covers {} areas, instance has {}",
                checkpoint.areas,
                instance.len()
            ),
        });
    }
    run_budgeted(instance, constraints, config, budget, Some(checkpoint), rec)
}

/// Everything [`run_budgeted`] needs to close out one outcome: the shared
/// "note stop reason, record checkpoint size, close the solve span, snapshot
/// counters" epilogue.
#[allow(clippy::too_many_arguments)]
fn seal_outcome(
    rec: &mut Recorder,
    counters_at_entry: &Counters,
    solution: Solution,
    feasibility: FeasibilityReport,
    heterogeneity_before: f64,
    tabu: TabuStats,
    timings: PhaseTimings,
    stop_reason: StopReason,
    progress: Progress,
    checkpoint: Option<Checkpoint>,
) -> SolveOutcome {
    rec.note("stop_reason", stop_reason.code() as f64);
    if let Some(ckpt) = &checkpoint {
        rec.counters()
            .record_max(CounterKind::CheckpointBytes, ckpt.to_text().len() as u64);
    }
    rec.span_end(); // close "solve"
    if let Some(live) = rec.live() {
        live.set_regions(solution.regions.len() as u64);
        live.set_stop_reason(stop_reason.name());
        live.mark_done();
    }
    rec.live_flush();
    let counters = rec.counters_snapshot().delta_since(counters_at_entry);
    let trajectory = rec.take_trajectory();
    SolveOutcome {
        report: SolveReport {
            solution,
            feasibility,
            heterogeneity_before,
            tabu,
            timings,
            counters,
            trajectory,
        },
        stop_reason,
        progress,
        checkpoint,
    }
}

fn run_budgeted(
    instance: &EmpInstance,
    constraints: &ConstraintSet,
    config: &FactConfig,
    budget: &SolveBudget,
    resume_from: Option<&Checkpoint>,
    rec: &mut Recorder,
) -> Result<SolveOutcome, EmpError> {
    let engine = ConstraintEngine::compile(instance, constraints)?;
    let bad = |message: String| EmpError::BadCheckpoint { message };

    // Decode the resume point before any spans open, so a corrupt
    // checkpoint cannot leave a half-opened trace behind.
    let (start_iter, mut best, tabu_resume): (usize, Option<Partition>, Option<TabuResume>) =
        match resume_from.map(|c| &c.phase) {
            None => (0, None, None),
            Some(CheckpointPhase::Construction { next_iter, best }) => {
                let best = best
                    .as_ref()
                    .map(|d| Partition::from_dump(&engine, instance.len(), d))
                    .transpose()
                    .map_err(bad)?;
                (*next_iter, best, None)
            }
            Some(CheckpointPhase::Tabu(t)) => {
                let working =
                    Partition::from_dump(&engine, instance.len(), &t.partition).map_err(bad)?;
                if t.best_assignment.len() != instance.len() {
                    return Err(bad(format!(
                        "best assignment covers {} areas, instance has {}",
                        t.best_assignment.len(),
                        instance.len()
                    )));
                }
                let state = TabuResume {
                    iterations: t.iterations,
                    moves: t.moves,
                    no_improve: t.no_improve,
                    initial: f64::from_bits(t.initial),
                    current_h: f64::from_bits(t.current_h),
                    best_h: f64::from_bits(t.best_h),
                    best_assignment: t.best_assignment.clone(),
                    tabu: TabuTable::from_stamps(
                        config.tabu_tenure,
                        t.tabu_len,
                        t.tabu_stride,
                        &t.tabu_expiry,
                    )
                    .map_err(bad)?,
                };
                (
                    config.construction_iterations.max(1),
                    Some(working),
                    Some(state),
                )
            }
        };

    let counters_at_entry = rec.counters_snapshot();
    rec.span_begin("solve", None);

    // Phase 1: feasibility. Always runs fully — it is cheap, deterministic,
    // and recomputed on every resume rather than checkpointed, so a budget
    // can never produce a false infeasibility verdict.
    if let Some(live) = rec.live() {
        live.set_phase(emp_obs::SolvePhase::Feasibility);
        live.set_deadline_remaining(budget.deadline_remaining());
    }
    rec.span_begin("feasibility", None);
    let feasibility = feasibility_phase(&engine);
    let feasibility_time = rec.span_end();
    if feasibility.is_infeasible() {
        rec.span_end(); // close "solve"
        if let Some(live) = rec.live() {
            live.mark_done();
        }
        rec.live_flush();
        return Err(EmpError::Infeasible {
            reasons: feasibility.infeasible_reasons(),
        });
    }
    let mut eligible = vec![true; instance.len()];
    for &a in &feasibility.invalid_areas {
        eligible[a as usize] = false;
    }

    // Phase 2: construction, serial, polled once per iteration.
    if let Some(live) = rec.live() {
        live.set_phase(emp_obs::SolvePhase::Construction);
    }
    let t1 = Instant::now();
    let iterations = config.construction_iterations.max(1);
    let mut completed_iters = start_iter;
    let mut construction_stop: Option<StopReason> = None;
    if tabu_resume.is_none() {
        for i in start_iter..iterations {
            rec.counters().inc(CounterKind::CancelPolls);
            if let Some(reason) = budget.poll() {
                if reason == StopReason::DeadlineExceeded {
                    rec.counters().inc(CounterKind::DeadlineExceeded);
                }
                construction_stop = Some(reason);
                break;
            }
            rec.span_begin("construct_iter", Some(i as u64));
            let cand = construct_once(
                &engine,
                &feasibility,
                &eligible,
                config.merge_limit,
                config.seed.wrapping_add(i as u64),
                rec,
            );
            rec.span_end();
            if best.as_ref().is_none_or(|b| better(&engine, &cand, b)) {
                best = Some(cand);
            }
            completed_iters = i + 1;
            if let Some(live) = rec.live() {
                // Construction iterations are coarse (one per span, not per
                // move), so a flush per iteration is cheap.
                live.set_iteration(completed_iters as u64);
                live.set_polls(budget.polls());
                live.set_deadline_remaining(budget.deadline_remaining());
                rec.live_flush();
            }
        }
    } else {
        completed_iters = iterations;
    }
    let construction_time = t1.elapsed().as_secs_f64();

    if let Some(reason) = construction_stop {
        // Interrupted between construction iterations: the incumbent is the
        // best finished candidate — or the valid all-unassigned (p = 0)
        // partition when the budget fired before the first one finished.
        let checkpoint = Checkpoint {
            seed: config.seed,
            areas: instance.len(),
            phase: CheckpointPhase::Construction {
                next_iter: completed_iters,
                best: best.as_ref().map(|p| p.dump()),
            },
        };
        let incumbent = best.unwrap_or_else(|| Partition::new(instance.len()));
        let heterogeneity_before = incumbent.heterogeneity_with(&engine);
        return Ok(seal_outcome(
            rec,
            &counters_at_entry,
            Solution::from_partition(&engine, &incumbent),
            feasibility,
            heterogeneity_before,
            TabuStats {
                initial: heterogeneity_before,
                best: heterogeneity_before,
                ..Default::default()
            },
            PhaseTimings {
                feasibility: feasibility_time,
                construction: construction_time,
                local_search: 0.0,
            },
            reason,
            Progress {
                construction_iterations: completed_iters,
                ..Default::default()
            },
            Some(checkpoint),
        ));
    }

    let mut partition = best.expect("at least one construction iteration");
    let heterogeneity_before = match resume_from.map(|c| &c.phase) {
        // The pre-tabu objective is path-dependent state from the first
        // leg; recomputing it here would not be bit-identical.
        Some(CheckpointPhase::Tabu(t)) => f64::from_bits(t.heterogeneity_before),
        _ => partition.heterogeneity_with(&engine),
    };

    if let Some(live) = rec.live() {
        live.set_regions(partition.region_ids().count() as u64);
        live.set_objective(heterogeneity_before, heterogeneity_before);
        live.set_phase(emp_obs::SolvePhase::LocalSearch);
    }
    rec.live_flush();

    // Phase 3: local search, polled once per tabu iteration.
    let t2 = Instant::now();
    if !config.local_search {
        return Ok(seal_outcome(
            rec,
            &counters_at_entry,
            Solution::from_partition(&engine, &partition),
            feasibility,
            heterogeneity_before,
            TabuStats {
                initial: heterogeneity_before,
                best: heterogeneity_before,
                ..Default::default()
            },
            PhaseTimings {
                feasibility: feasibility_time,
                construction: construction_time,
                local_search: 0.0,
            },
            StopReason::Completed,
            Progress {
                construction_iterations: completed_iters,
                ..Default::default()
            },
            None,
        ));
    }
    let tabu_cfg = tabu_config_for(config, instance.len());
    rec.span_begin("tabu", None);
    let outcome =
        tabu_search_budgeted(&engine, &mut partition, &tabu_cfg, budget, tabu_resume, rec);
    rec.span_end();
    let local_search_time = t2.elapsed().as_secs_f64();
    let timings = PhaseTimings {
        feasibility: feasibility_time,
        construction: construction_time,
        local_search: local_search_time,
    };
    match outcome {
        TabuOutcome::Converged(stats) => Ok(seal_outcome(
            rec,
            &counters_at_entry,
            Solution::from_partition(&engine, &partition),
            feasibility,
            heterogeneity_before,
            stats,
            timings,
            StopReason::Completed,
            Progress {
                construction_iterations: completed_iters,
                tabu_iterations: stats.iterations,
                tabu_moves: stats.moves,
            },
            None,
        )),
        TabuOutcome::Interrupted {
            stats,
            reason,
            state,
        } => {
            // The checkpoint carries the *working* partition (where the
            // move sequence continues); the incumbent handed back to the
            // caller is the best assignment seen so far.
            let checkpoint = Checkpoint {
                seed: config.seed,
                areas: instance.len(),
                phase: CheckpointPhase::Tabu(TabuCheckpoint {
                    iterations: state.iterations,
                    moves: state.moves,
                    no_improve: state.no_improve,
                    initial: state.initial.to_bits(),
                    current_h: state.current_h.to_bits(),
                    best_h: state.best_h.to_bits(),
                    best_assignment: state.best_assignment.clone(),
                    tabu_stride: state.tabu.stride(),
                    tabu_len: state.tabu.table_len(),
                    tabu_expiry: state.tabu.nonzero_stamps(),
                    heterogeneity_before: heterogeneity_before.to_bits(),
                    partition: partition.dump(),
                }),
            };
            let incumbent = Partition::from_assignment(&engine, &state.best_assignment);
            Ok(seal_outcome(
                rec,
                &counters_at_entry,
                Solution::from_partition(&engine, &incumbent),
                feasibility,
                heterogeneity_before,
                stats,
                timings,
                reason,
                Progress {
                    construction_iterations: completed_iters,
                    tabu_iterations: stats.iterations,
                    tabu_moves: stats.moves,
                },
                Some(checkpoint),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttributeTable;
    use crate::constraint::Constraint;
    use crate::validate::validate_solution;
    use emp_graph::ContiguityGraph;
    use rand::Rng;

    /// A 10x10 lattice with deterministic pseudo-census attributes.
    fn grid_instance(seed: u64) -> EmpInstance {
        let n = 100;
        let graph = ContiguityGraph::lattice(10, 10);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut attrs = AttributeTable::new(n);
        let pop: Vec<f64> = (0..n).map(|_| rng.gen_range(100.0..5000.0)).collect();
        let emp: Vec<f64> = pop.iter().map(|p| p * rng.gen_range(0.3..0.6)).collect();
        attrs.push_column("POP", pop).unwrap();
        attrs.push_column("EMP", emp).unwrap();
        attrs
            .push_column("HH", (0..n).map(|_| rng.gen_range(50.0..2000.0)).collect())
            .unwrap();
        EmpInstance::new(graph, attrs, "HH").unwrap()
    }

    fn default_constraints() -> ConstraintSet {
        ConstraintSet::new()
            .with(Constraint::min("POP", f64::NEG_INFINITY, 3000.0).unwrap())
            .with(Constraint::avg("EMP", 500.0, 2500.0).unwrap())
            .with(Constraint::sum("POP", 8000.0, f64::INFINITY).unwrap())
    }

    #[test]
    fn end_to_end_solution_is_valid() {
        let inst = grid_instance(1);
        let report = solve(&inst, &default_constraints(), &FactConfig::seeded(7)).unwrap();
        assert!(report.p() >= 1, "expected some regions");
        validate_solution(&inst, &default_constraints(), &report.solution).unwrap();
        assert!(report.timings.total() > 0.0);
    }

    #[test]
    fn local_search_never_worsens() {
        let inst = grid_instance(2);
        let report = solve(&inst, &default_constraints(), &FactConfig::seeded(3)).unwrap();
        assert!(report.solution.heterogeneity <= report.heterogeneity_before + 1e-9);
        assert!(
            report
                .improvement()
                .expect("tabu ran on a nonzero objective")
                >= 0.0
        );
    }

    #[test]
    fn disabling_local_search_keeps_construction_result() {
        let inst = grid_instance(3);
        let cfg = FactConfig {
            local_search: false,
            ..FactConfig::seeded(3)
        };
        let report = solve(&inst, &default_constraints(), &cfg).unwrap();
        assert_eq!(report.solution.heterogeneity, report.heterogeneity_before);
        assert_eq!(report.tabu.moves, 0);
    }

    #[test]
    fn incremental_tabu_matches_reference_path() {
        // The ablation flag changes the neighborhood's cost, not its choice:
        // both paths must trace identical move sequences for a fixed seed.
        let inst = grid_instance(9);
        let fast = solve(&inst, &default_constraints(), &FactConfig::seeded(5)).unwrap();
        let slow = solve(
            &inst,
            &default_constraints(),
            &FactConfig {
                incremental_tabu: false,
                ..FactConfig::seeded(5)
            },
        )
        .unwrap();
        assert_eq!(fast.solution, slow.solution);
        assert_eq!(fast.tabu.moves, slow.tabu.moves);
        assert_eq!(fast.tabu.best, slow.tabu.best);
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = grid_instance(4);
        let a = solve(&inst, &default_constraints(), &FactConfig::seeded(9)).unwrap();
        let b = solve(&inst, &default_constraints(), &FactConfig::seeded(9)).unwrap();
        assert_eq!(a.solution, b.solution);
    }

    #[test]
    fn parallel_matches_serial_quality() {
        let inst = grid_instance(5);
        let serial = solve(
            &inst,
            &default_constraints(),
            &FactConfig {
                construction_iterations: 4,
                parallel: false,
                ..FactConfig::seeded(11)
            },
        )
        .unwrap();
        let parallel = solve(
            &inst,
            &default_constraints(),
            &FactConfig {
                construction_iterations: 4,
                parallel: true,
                ..FactConfig::seeded(11)
            },
        )
        .unwrap();
        // Same candidate set, same ranking: identical p.
        assert_eq!(serial.p(), parallel.p());
        validate_solution(&inst, &default_constraints(), &parallel.solution).unwrap();
    }

    #[test]
    fn infeasible_instances_error_out() {
        let inst = grid_instance(6);
        let set = ConstraintSet::new().with(Constraint::sum("POP", 1e12, f64::INFINITY).unwrap());
        match solve(&inst, &set, &FactConfig::default()) {
            Err(EmpError::Infeasible { reasons }) => assert!(!reasons.is_empty()),
            other => panic!("expected infeasibility, got {other:?}"),
        }
    }

    #[test]
    fn unknown_attribute_errors_out() {
        let inst = grid_instance(7);
        let set =
            ConstraintSet::new().with(Constraint::sum("MISSING", 0.0, f64::INFINITY).unwrap());
        assert!(matches!(
            solve(&inst, &set, &FactConfig::default()),
            Err(EmpError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn more_iterations_never_reduce_p() {
        let inst = grid_instance(8);
        let one = solve(
            &inst,
            &default_constraints(),
            &FactConfig {
                construction_iterations: 1,
                local_search: false,
                ..FactConfig::seeded(13)
            },
        )
        .unwrap();
        let many = solve(
            &inst,
            &default_constraints(),
            &FactConfig {
                construction_iterations: 6,
                local_search: false,
                ..FactConfig::seeded(13)
            },
        )
        .unwrap();
        assert!(many.p() >= one.p());
    }

    #[test]
    fn multi_component_dataset_is_supported() {
        // Two disconnected 3x3 blocks (the MP-regions formulation cannot
        // handle this; EMP can — paper §I contribution (e)).
        let mut edges = Vec::new();
        let id = |b: u32, x: u32, y: u32| b * 9 + y * 3 + x;
        for b in 0..2 {
            for y in 0..3 {
                for x in 0..3 {
                    if x + 1 < 3 {
                        edges.push((id(b, x, y), id(b, x + 1, y)));
                    }
                    if y + 1 < 3 {
                        edges.push((id(b, x, y), id(b, x, y + 1)));
                    }
                }
            }
        }
        let graph = ContiguityGraph::from_edges(18, &edges).unwrap();
        let mut attrs = AttributeTable::new(18);
        attrs
            .push_column("POP", (0..18).map(|i| 100.0 + i as f64).collect())
            .unwrap();
        let inst = EmpInstance::new(graph, attrs, "POP").unwrap();
        let set = ConstraintSet::new().with(Constraint::sum("POP", 200.0, f64::INFINITY).unwrap());
        let report = solve(&inst, &set, &FactConfig::seeded(2)).unwrap();
        assert!(report.p() >= 2, "each component should host regions");
        validate_solution(&inst, &set, &report.solution).unwrap();
    }

    #[test]
    fn skipped_local_search_has_undefined_improvement() {
        let inst = grid_instance(10);
        let cfg = FactConfig {
            local_search: false,
            ..FactConfig::seeded(4)
        };
        let report = solve(&inst, &default_constraints(), &cfg).unwrap();
        assert_eq!(report.trajectory.points(), 0);
        assert_eq!(report.improvement(), None);
    }

    #[test]
    fn observed_solve_emits_phase_spans_and_counters() {
        use emp_obs::{CounterKind, InMemorySink};

        let inst = grid_instance(11);
        let sink = InMemorySink::new();
        let handle = sink.handle();
        let mut rec = Recorder::with_sink(Box::new(sink));
        let report = solve_observed(
            &inst,
            &default_constraints(),
            &FactConfig::seeded(7),
            &mut rec,
        )
        .unwrap();
        rec.finish();

        let data = handle.lock().unwrap();
        let roots: Vec<&str> = data
            .spans
            .iter()
            .filter(|s| s.depth == 0)
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(roots, ["solve"], "exactly one root span");
        for name in ["feasibility", "construct_iter", "grow", "adjust", "tabu"] {
            assert!(
                data.spans.iter().any(|s| s.name == name),
                "missing span {name}"
            );
        }
        // The root span carries the whole solve's counters.
        let solve_span = data.spans.iter().find(|s| s.name == "solve").unwrap();
        assert_eq!(
            solve_span.counters.get(CounterKind::TabuMovesApplied),
            report.counters.get(CounterKind::TabuMovesApplied)
        );
        assert!(report.counters.get(CounterKind::RegionsCreated) > 0);
        assert_eq!(
            report.counters.get(CounterKind::ArticulationCacheHits)
                + report.counters.get(CounterKind::ArticulationCacheMisses),
            report.counters.get(CounterKind::ArticulationQueries)
        );
        // The trajectory in the report matches the sink's buffered points.
        assert_eq!(report.trajectory.points(), data.trajectory.len() as u64);
    }

    #[test]
    fn parallel_observed_solve_merges_worker_counters() {
        use emp_obs::CounterKind;

        let inst = grid_instance(12);
        let cfg = FactConfig {
            construction_iterations: 3,
            parallel: true,
            ..FactConfig::seeded(8)
        };
        let mut rec = Recorder::noop();
        let report = solve_observed(&inst, &default_constraints(), &cfg, &mut rec).unwrap();
        // Region creations happen on worker threads; the merged counters
        // must still see them.
        assert!(report.counters.get(CounterKind::RegionsCreated) > 0);
    }

    /// The parallel construction path buffers each worker's events and
    /// replays them at join time, so an observed parallel solve emits the
    /// same span structure as the serial path: `construct_iter` spans in
    /// iteration order with `grow`/`adjust` nested one level deeper.
    #[test]
    fn parallel_observed_solve_replays_nested_construction_spans() {
        use emp_obs::InMemorySink;

        let inst = grid_instance(12);
        let cfg = FactConfig {
            construction_iterations: 3,
            parallel: true,
            ..FactConfig::seeded(8)
        };
        let sink = InMemorySink::new();
        let handle = sink.handle();
        let mut rec = Recorder::with_sink(Box::new(sink));
        solve_observed(&inst, &default_constraints(), &cfg, &mut rec).unwrap();
        rec.finish();

        let data = handle.lock().unwrap();
        let iters: Vec<_> = data
            .spans
            .iter()
            .filter(|s| s.name == "construct_iter")
            .collect();
        assert_eq!(iters.len(), 3, "one span per construction iteration");
        assert_eq!(
            iters.iter().map(|s| s.index).collect::<Vec<_>>(),
            [Some(0), Some(1), Some(2)],
            "replayed in iteration order regardless of scheduling"
        );
        for kind in ["grow", "adjust"] {
            let nested = data.spans.iter().find(|s| s.name == kind);
            let nested = nested.unwrap_or_else(|| panic!("missing nested {kind} span"));
            assert_eq!(
                nested.depth,
                iters[0].depth + 1,
                "{kind} nests inside construct_iter"
            );
        }
    }
}
