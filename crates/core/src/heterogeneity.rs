//! Region heterogeneity: `H(P) = Σ_R Σ_{i,j ∈ R} |d_i - d_j|` (paper Eq. 1).
//!
//! Each region keeps a [`DissimStat`]: its members' dissimilarity values in
//! sorted order plus the running pairwise sum, so the local-search phase can
//! evaluate a move's ΔH in O(k) and commit it in O(k) — matching the paper's
//! O(n) move attempt while avoiding full recomputation (O(k²)).

/// Sorted dissimilarity values of one region with the pairwise-distance sum
/// maintained incrementally.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DissimStat {
    sorted: Vec<f64>,
    pairwise: f64,
}

impl DissimStat {
    /// Empty statistic.
    pub fn new() -> Self {
        DissimStat::default()
    }

    /// Builds the statistic for a value slice.
    pub fn from_values(values: &[f64]) -> Self {
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite dissimilarity"));
        let pairwise = pairwise_of_sorted(&sorted);
        DissimStat { sorted, pairwise }
    }

    /// Number of stored values.
    #[inline]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the statistic is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Current pairwise sum `Σ_{i<j} |d_i - d_j|` counted once per unordered
    /// pair (the paper's double sum counts each pair twice; a constant factor
    /// that cancels in comparisons — see [`DissimStat::paper_heterogeneity`]).
    #[inline]
    pub fn pairwise(&self) -> f64 {
        self.pairwise
    }

    /// The paper's Eq. 1 value for this region (each pair counted twice).
    #[inline]
    pub fn paper_heterogeneity(&self) -> f64 {
        2.0 * self.pairwise
    }

    /// Overwrites the running pairwise sum with an externally-recorded
    /// value. Checkpoint restore only: the incremental sum is
    /// path-dependent in its last ulps, so a resumed search must continue
    /// from the *recorded* bits, not a fresh recomputation.
    pub(crate) fn restore_pairwise(&mut self, pairwise: f64) {
        self.pairwise = pairwise;
    }

    /// Change of the pairwise sum if `x` were inserted.
    pub fn insert_delta(&self, x: f64) -> f64 {
        // Σ |x - v| over current members.
        self.sorted.iter().map(|v| (x - v).abs()).sum()
    }

    /// Change of the pairwise sum if `x` (which must be present) were removed.
    pub fn remove_delta(&self, x: f64) -> f64 {
        -(self.insert_delta(x)/* |x-x| contributes 0 */)
    }

    /// Inserts `x`, returning the pairwise-sum delta.
    pub fn insert(&mut self, x: f64) -> f64 {
        let delta = self.insert_delta(x);
        let idx = self.sorted.partition_point(|&v| v < x);
        self.sorted.insert(idx, x);
        self.pairwise += delta;
        delta
    }

    /// Removes one occurrence of `x`, returning the pairwise-sum delta.
    /// Panics if `x` is absent.
    pub fn remove(&mut self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v < x);
        assert!(
            idx < self.sorted.len() && self.sorted[idx] == x,
            "DissimStat: removing absent value {x}"
        );
        self.sorted.remove(idx);
        let delta = -self.insert_delta(x);
        self.pairwise += delta;
        delta
    }

    /// Merges `other` into `self`, returning the pairwise-sum delta (the
    /// cross-pair contribution).
    pub fn absorb(&mut self, other: &DissimStat) -> f64 {
        // Cross terms via a merge-style scan: for each x in other, sum of
        // |x - v| over self. O(k_other * log k_self) with prefix sums would
        // be possible; regions merge rarely, so the simple O(k*k) loop is
        // only used when both sides are small — otherwise rebuild.
        let cross: f64 = if other.len().saturating_mul(self.len()) <= 4096 {
            other.sorted.iter().map(|&x| self.insert_delta(x)).sum()
        } else {
            cross_pairwise_sorted(&self.sorted, &other.sorted)
        };
        let mut merged = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.sorted.len() && j < other.sorted.len() {
            if self.sorted[i] <= other.sorted[j] {
                merged.push(self.sorted[i]);
                i += 1;
            } else {
                merged.push(other.sorted[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&self.sorted[i..]);
        merged.extend_from_slice(&other.sorted[j..]);
        self.sorted = merged;
        self.pairwise += other.pairwise + cross;
        cross
    }
}

/// Pairwise sum of a sorted slice in O(k):
/// `Σ_{i<j} (d_j - d_i) = Σ_k (2k - m + 1) · d_(k)`.
pub fn pairwise_of_sorted(sorted: &[f64]) -> f64 {
    let m = sorted.len() as f64;
    sorted
        .iter()
        .enumerate()
        .map(|(k, &v)| (2.0 * k as f64 - m + 1.0) * v)
        .sum()
}

/// Cross-pair sum between two sorted slices in O(k₁ + k₂).
fn cross_pairwise_sorted(a: &[f64], b: &[f64]) -> f64 {
    // For each x in b: Σ_a |x - v| = x·c_less − s_less + (s_total − s_less) − x·(n − c_less)
    let s_total: f64 = a.iter().sum();
    let n = a.len();
    let mut acc = 0.0;
    let mut c_less = 0usize;
    let mut s_less = 0.0f64;
    // b is sorted, so walk a's prefix monotonically.
    for &x in b {
        while c_less < n && a[c_less] <= x {
            s_less += a[c_less];
            c_less += 1;
        }
        acc += x * c_less as f64 - s_less + (s_total - s_less) - x * (n - c_less) as f64;
    }
    acc
}

/// Total heterogeneity (unordered-pair convention) of a full partition given
/// per-area dissimilarities and region member lists.
pub fn total_heterogeneity(dissim: &[f64], regions: &[Vec<u32>]) -> f64 {
    regions
        .iter()
        .map(|members| {
            let values: Vec<f64> = members.iter().map(|&a| dissim[a as usize]).collect();
            DissimStat::from_values(&values).pairwise()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute(values: &[f64]) -> f64 {
        let mut acc = 0.0;
        for i in 0..values.len() {
            for j in (i + 1)..values.len() {
                acc += (values[i] - values[j]).abs();
            }
        }
        acc
    }

    #[test]
    fn from_values_matches_bruteforce() {
        let vals = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let s = DissimStat::from_values(&vals);
        assert!((s.pairwise() - brute(&vals)).abs() < 1e-9);
        assert!((s.paper_heterogeneity() - 2.0 * brute(&vals)).abs() < 1e-9);
    }

    #[test]
    fn insert_and_remove_track_bruteforce() {
        let mut s = DissimStat::new();
        let mut vals: Vec<f64> = Vec::new();
        for x in [5.0, 2.0, 8.0, 2.0, 7.0] {
            s.insert(x);
            vals.push(x);
            assert!(
                (s.pairwise() - brute(&vals)).abs() < 1e-9,
                "after insert {x}"
            );
        }
        for x in [2.0, 8.0, 5.0] {
            s.remove(x);
            let idx = vals.iter().position(|&v| v == x).unwrap();
            vals.remove(idx);
            assert!(
                (s.pairwise() - brute(&vals)).abs() < 1e-9,
                "after remove {x}"
            );
        }
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn deltas_match_commit() {
        let mut s = DissimStat::from_values(&[1.0, 4.0, 6.0]);
        let d = s.insert_delta(3.0);
        let committed = s.insert(3.0);
        assert_eq!(d, committed);
        assert_eq!(d, 2.0 + 1.0 + 3.0);
        let d = s.remove_delta(4.0);
        let committed = s.remove(4.0);
        assert_eq!(d, committed);
    }

    #[test]
    #[should_panic(expected = "removing absent value")]
    fn remove_absent_panics() {
        let mut s = DissimStat::from_values(&[1.0]);
        s.remove(2.0);
    }

    #[test]
    fn absorb_matches_bruteforce() {
        let a_vals = [1.0, 5.0, 9.0];
        let b_vals = [2.0, 2.0, 8.0];
        let mut a = DissimStat::from_values(&a_vals);
        let b = DissimStat::from_values(&b_vals);
        a.absorb(&b);
        let mut all = a_vals.to_vec();
        all.extend_from_slice(&b_vals);
        assert!((a.pairwise() - brute(&all)).abs() < 1e-9);
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn absorb_large_uses_linear_path() {
        let a_vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b_vals: Vec<f64> = (0..100).map(|i| (i * 3 % 97) as f64).collect();
        let mut a = DissimStat::from_values(&a_vals);
        let b = DissimStat::from_values(&b_vals);
        a.absorb(&b);
        let mut all = a_vals;
        all.extend_from_slice(&b_vals);
        assert!((a.pairwise() - brute(&all)).abs() < 1e-6);
    }

    #[test]
    fn total_heterogeneity_sums_regions() {
        let d = [0.0, 1.0, 10.0, 12.0];
        let regions = vec![vec![0u32, 1], vec![2, 3]];
        assert!((total_heterogeneity(&d, &regions) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_are_zero() {
        assert_eq!(DissimStat::new().pairwise(), 0.0);
        assert_eq!(DissimStat::from_values(&[7.0]).pairwise(), 0.0);
        assert!(DissimStat::new().is_empty());
    }
}
