//! Full-solution validation: the EMP output contract, checked from scratch.
//!
//! Used by integration and property tests as an oracle independent of the
//! incremental bookkeeping in [`crate::partition`].

use crate::constraint::{Aggregate, ConstraintSet};
use crate::engine::ConstraintEngine;
use crate::error::EmpError;
use crate::instance::EmpInstance;
use crate::solution::Solution;
use emp_graph::subgraph::is_connected_subset;

/// Validates every EMP output constraint (paper §III):
///
/// 1. regions are pairwise disjoint and disjoint from `U_0`;
/// 2. regions plus `U_0` cover all areas;
/// 3. every region is non-empty and spatially contiguous;
/// 4. every region satisfies every user-defined constraint;
/// 5. the reported heterogeneity matches a fresh recomputation;
/// 6. the `assignment` vector is consistent with `regions`/`unassigned`.
///
/// Returns all violation descriptions on failure.
pub fn validate_solution(
    instance: &EmpInstance,
    constraints: &ConstraintSet,
    solution: &Solution,
) -> Result<(), Vec<String>> {
    let mut problems = Vec::new();
    let n = instance.len();

    if solution.assignment.len() != n {
        problems.push(format!(
            "assignment length {} != {} areas",
            solution.assignment.len(),
            n
        ));
        return Err(problems);
    }

    // Coverage and disjointness.
    let mut seen = vec![false; n];
    for (ri, members) in solution.regions.iter().enumerate() {
        if members.is_empty() {
            problems.push(format!("region {ri} is empty"));
        }
        for &a in members {
            if a as usize >= n {
                problems.push(format!("region {ri} contains out-of-range area {a}"));
                continue;
            }
            if seen[a as usize] {
                problems.push(format!("area {a} appears in more than one region"));
            }
            seen[a as usize] = true;
            if solution.assignment[a as usize] != Some(ri as u32) {
                problems.push(format!(
                    "assignment[{a}] = {:?}, expected Some({ri})",
                    solution.assignment[a as usize]
                ));
            }
        }
    }
    for &a in &solution.unassigned {
        if a as usize >= n {
            problems.push(format!("unassigned area {a} out of range"));
            continue;
        }
        if seen[a as usize] {
            problems.push(format!("area {a} is both assigned and unassigned"));
        }
        seen[a as usize] = true;
        if solution.assignment[a as usize].is_some() {
            problems.push(format!("assignment[{a}] set but area is in U_0"));
        }
    }
    for (a, s) in seen.iter().enumerate() {
        if !s {
            problems.push(format!("area {a} is neither in a region nor in U_0"));
        }
    }

    // Contiguity.
    for (ri, members) in solution.regions.iter().enumerate() {
        if !is_connected_subset(instance.graph(), members) {
            problems.push(format!("region {ri} is not spatially contiguous"));
        }
    }

    // Constraints, recomputed from scratch.
    match ConstraintEngine::compile(instance, constraints) {
        Ok(engine) => {
            for (ri, members) in solution.regions.iter().enumerate() {
                let agg = engine.compute_fresh(members);
                for (ci, c) in engine.constraints().iter().enumerate() {
                    let v = engine.value(&agg, ci);
                    if v.is_nan() || !c.contains(v) {
                        problems.push(format!(
                            "region {ri} violates constraint {ci} ({:?} value {v}, range [{}, {}])",
                            c.aggregate, c.low, c.high
                        ));
                    }
                }
            }
        }
        Err(e) => problems.push(format!("constraint compilation failed: {e}")),
    }

    // Objective score (heterogeneity under the default objective).
    let fresh = instance.objective().score(&solution.regions);
    if (fresh - solution.heterogeneity).abs() > 1e-6 * fresh.abs().max(1.0) {
        problems.push(format!(
            "reported heterogeneity {} != recomputed {fresh}",
            solution.heterogeneity
        ));
    }

    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

/// Recomputes the solution's objective score (heterogeneity under the
/// default objective) from scratch, independent of any incremental
/// bookkeeping. The differential oracle compares this against the reported
/// [`Solution::heterogeneity`].
pub fn recompute_heterogeneity(instance: &EmpInstance, solution: &Solution) -> f64 {
    instance.objective().score(&solution.regions)
}

/// Whether every region of `solution` satisfies every user-defined
/// constraint, recomputed fresh. Structural properties (coverage,
/// disjointness, contiguity) are [`validate_solution`]'s job; this is the
/// cheap constraint-only probe the oracle uses on mapped metamorphic
/// solutions.
pub fn solution_feasible(
    instance: &EmpInstance,
    constraints: &ConstraintSet,
    solution: &Solution,
) -> Result<bool, EmpError> {
    let engine = ConstraintEngine::compile(instance, constraints)?;
    for members in &solution.regions {
        let agg = engine.compute_fresh(members);
        if !engine.satisfies_all(&agg) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Convenience wrapper converting validation problems into an [`EmpError`].
pub fn validate_or_error(
    instance: &EmpInstance,
    constraints: &ConstraintSet,
    solution: &Solution,
) -> Result<(), EmpError> {
    validate_solution(instance, constraints, solution)
        .map_err(|reasons| EmpError::Infeasible { reasons })
}

/// Theoretical upper bound on `p` implied by the constraints (paper §V-B):
/// each region needs at least one seed per extrema constraint, and the SUM /
/// COUNT lower bounds cap how many disjoint regions can exist.
pub fn p_upper_bound(
    instance: &EmpInstance,
    constraints: &ConstraintSet,
) -> Result<usize, EmpError> {
    let engine = ConstraintEngine::compile(instance, constraints)?;
    let n = instance.len();
    let mut bound = n;

    // Extrema: at most (number of in-bounds witness areas) regions.
    for (ci, c) in engine.constraints().iter().enumerate() {
        match c.aggregate {
            Aggregate::Min | Aggregate::Max => {
                let witnesses = (0..n as u32)
                    .filter(|&a| c.contains(engine.area_value(ci, a)))
                    .count();
                bound = bound.min(witnesses);
            }
            Aggregate::Sum => {
                if c.low > 0.0 {
                    let total: f64 = (0..n as u32).map(|a| engine.area_value(ci, a)).sum();
                    bound = bound.min((total / c.low).floor() as usize);
                }
            }
            Aggregate::Count => {
                if c.low > 0.0 {
                    bound = bound.min((n as f64 / c.low).floor() as usize);
                }
            }
            Aggregate::Avg => {}
        }
    }
    Ok(bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttributeTable;
    use crate::constraint::Constraint;
    use emp_graph::ContiguityGraph;

    fn inst() -> EmpInstance {
        let graph = ContiguityGraph::lattice(4, 1);
        let mut attrs = AttributeTable::new(4);
        attrs
            .push_column("POP", vec![10.0, 20.0, 30.0, 40.0])
            .unwrap();
        EmpInstance::new(graph, attrs, "POP").unwrap()
    }

    fn good_solution() -> Solution {
        Solution {
            regions: vec![vec![0, 1], vec![2, 3]],
            assignment: vec![Some(0), Some(0), Some(1), Some(1)],
            unassigned: vec![],
            heterogeneity: 20.0, // |10-20| + |30-40|
        }
    }

    #[test]
    fn accepts_valid_solution() {
        let set = ConstraintSet::new().with(Constraint::sum("POP", 30.0, f64::INFINITY).unwrap());
        validate_solution(&inst(), &set, &good_solution()).unwrap();
        validate_or_error(&inst(), &set, &good_solution()).unwrap();
    }

    #[test]
    fn detects_constraint_violation() {
        let set = ConstraintSet::new().with(Constraint::sum("POP", 50.0, f64::INFINITY).unwrap());
        let errs = validate_solution(&inst(), &set, &good_solution()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("violates constraint")));
    }

    #[test]
    fn detects_discontiguity() {
        let sol = Solution {
            regions: vec![vec![0, 2], vec![1, 3]],
            assignment: vec![Some(0), Some(1), Some(0), Some(1)],
            unassigned: vec![],
            heterogeneity: 40.0,
        };
        let errs = validate_solution(&inst(), &ConstraintSet::new(), &sol).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("not spatially contiguous")));
    }

    #[test]
    fn detects_overlap_and_gaps() {
        let sol = Solution {
            regions: vec![vec![0, 1], vec![1, 2]],
            assignment: vec![Some(0), Some(0), Some(1), None],
            unassigned: vec![],
            heterogeneity: 20.0,
        };
        let errs = validate_solution(&inst(), &ConstraintSet::new(), &sol).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("more than one region")));
        assert!(errs
            .iter()
            .any(|e| e.contains("neither in a region nor in U_0")));
    }

    #[test]
    fn detects_heterogeneity_mismatch() {
        let mut sol = good_solution();
        sol.heterogeneity = 999.0;
        let errs = validate_solution(&inst(), &ConstraintSet::new(), &sol).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("heterogeneity")));
    }

    #[test]
    fn detects_assignment_inconsistency() {
        let mut sol = good_solution();
        sol.assignment[0] = Some(1);
        let errs = validate_solution(&inst(), &ConstraintSet::new(), &sol).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("assignment[0]")));
    }

    #[test]
    fn recompute_and_feasibility_hooks() {
        let sol = good_solution();
        assert_eq!(recompute_heterogeneity(&inst(), &sol), 20.0);
        let loose = ConstraintSet::new().with(Constraint::sum("POP", 30.0, f64::INFINITY).unwrap());
        assert!(solution_feasible(&inst(), &loose, &sol).unwrap());
        let tight = ConstraintSet::new().with(Constraint::sum("POP", 50.0, f64::INFINITY).unwrap());
        assert!(!solution_feasible(&inst(), &tight, &sol).unwrap());
    }

    #[test]
    fn upper_bound_from_extrema_witnesses() {
        // MIN in [15, 25]: only area 1 (value 20) is a witness.
        let set = ConstraintSet::new().with(Constraint::min("POP", 15.0, 25.0).unwrap());
        assert_eq!(p_upper_bound(&inst(), &set).unwrap(), 1);
    }

    #[test]
    fn upper_bound_from_sum_and_count() {
        // Total POP = 100, SUM >= 40 -> at most 2 regions.
        let set = ConstraintSet::new().with(Constraint::sum("POP", 40.0, f64::INFINITY).unwrap());
        assert_eq!(p_upper_bound(&inst(), &set).unwrap(), 2);
        // COUNT >= 3 over 4 areas -> at most 1 region.
        let set = ConstraintSet::new().with(Constraint::count(3.0, f64::INFINITY).unwrap());
        assert_eq!(p_upper_bound(&inst(), &set).unwrap(), 1);
    }

    #[test]
    fn upper_bound_defaults_to_n() {
        assert_eq!(p_upper_bound(&inst(), &ConstraintSet::new()).unwrap(), 4);
    }
}
