//! Step 2 of the construction phase: **Region Growing** (paper §V-B).
//!
//! Grows regions that satisfy the AVG constraints without violating MIN/MAX,
//! in three substeps:
//!
//! * **2.1** — initialize regions from the seed set: seeds whose AVG
//!   attribute lies inside the range become singleton regions; seeds outside
//!   the range are merged with neighbors via Algorithm 1.
//! * **2.2** — assign remaining areas in two rounds: direct attachment to
//!   neighbor regions, then region-merging with a bounded number of merge
//!   trials (the *merge limit*).
//! * **2.3** — combine neighbor regions so every region satisfies all
//!   MIN/MAX constraints.
//!
//! Invariant used throughout (paper §V-B): all invalid areas were filtered in
//! the feasibility phase, so any remaining area satisfies `s ≥ l` of every
//! MIN constraint and `s ≤ u` of every MAX constraint — hence *adding* areas
//! can never break a MIN/MAX constraint that a region already satisfies, and
//! only AVG needs re-validation during growth.

use crate::constraint::Aggregate;
use crate::engine::{check_counter, ConstraintEngine, RegionAgg};
use crate::partition::{Partition, RegionId};
use emp_obs::{CounterKind, Counters};
use rand::seq::SliceRandom;
use rand::Rng;

/// Charges one `ChecksAvg` per AVG constraint about to be evaluated.
#[inline]
fn charge_avg_checks(engine: &ConstraintEngine<'_>, counters: &mut Counters) {
    counters.add(
        CounterKind::ChecksAvg,
        engine.indices_of(Aggregate::Avg).len() as u64,
    );
}

/// How an area's AVG-attribute value relates to the AVG constraints.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AvgClass {
    /// Within every AVG constraint's range (`unassigned_avg`).
    InRange,
    /// Below the first violated AVG constraint's lower bound
    /// (`unassigned_low`).
    Low,
    /// Above the first violated AVG constraint's upper bound
    /// (`unassigned_high`).
    High,
}

/// Classifies one area against the AVG constraints ([`AvgClass::InRange`]
/// when there are none).
pub fn classify_area(engine: &ConstraintEngine<'_>, area: u32) -> AvgClass {
    for &ci in engine.indices_of(Aggregate::Avg) {
        let v = engine.area_value(ci, area);
        let c = &engine.constraints()[ci];
        if v < c.low {
            return AvgClass::Low;
        }
        if v > c.high {
            return AvgClass::High;
        }
    }
    AvgClass::InRange
}

/// Whether a (non-empty) region satisfies every AVG constraint.
fn avg_satisfied(engine: &ConstraintEngine<'_>, agg: &RegionAgg) -> bool {
    engine
        .indices_of(Aggregate::Avg)
        .iter()
        .all(|&ci| engine.satisfied(agg, ci))
}

/// The first violated AVG constraint and the growth direction needed, if any.
fn first_violated_avg(engine: &ConstraintEngine<'_>, agg: &RegionAgg) -> Option<(usize, AvgClass)> {
    for &ci in engine.indices_of(Aggregate::Avg) {
        let v = engine.value(agg, ci);
        let c = &engine.constraints()[ci];
        if v < c.low {
            return Some((ci, AvgClass::Low));
        }
        if v > c.high {
            return Some((ci, AvgClass::High));
        }
    }
    None
}

/// Whether adding `area` to a region keeps every AVG constraint satisfied.
fn add_preserves_avg(engine: &ConstraintEngine<'_>, agg: &RegionAgg, area: u32) -> bool {
    engine.indices_of(Aggregate::Avg).iter().all(|&ci| {
        let c = &engine.constraints()[ci];
        let new_sum = agg.sums[c.slot] + engine.area_value(ci, area);
        let new_avg = new_sum / (agg.count + 1) as f64;
        c.contains(new_avg)
    })
}

/// Whether the union of two regions plus one extra area satisfies every AVG
/// constraint.
fn merged_satisfies_avg(
    engine: &ConstraintEngine<'_>,
    a: &RegionAgg,
    b: &RegionAgg,
    extra: u32,
) -> bool {
    engine.indices_of(Aggregate::Avg).iter().all(|&ci| {
        let c = &engine.constraints()[ci];
        let sum = a.sums[c.slot] + b.sums[c.slot] + engine.area_value(ci, extra);
        let avg = sum / (a.count + b.count + 1) as f64;
        c.contains(avg)
    })
}

/// Runs Step 2 on a fresh partition. `eligible[a]` is false for areas
/// filtered into `U_0` by the feasibility phase.
pub fn region_growing<R: Rng>(
    engine: &ConstraintEngine<'_>,
    partition: &mut Partition,
    seeds: &[u32],
    eligible: &[bool],
    merge_limit: usize,
    rng: &mut R,
) {
    region_growing_counted(
        engine,
        partition,
        seeds,
        eligible,
        merge_limit,
        rng,
        &mut Counters::new(),
    );
}

/// [`region_growing`] accumulating telemetry counters (region lifecycle,
/// merge trials, AVG constraint checks) into `counters`.
pub fn region_growing_counted<R: Rng>(
    engine: &ConstraintEngine<'_>,
    partition: &mut Partition,
    seeds: &[u32],
    eligible: &[bool],
    merge_limit: usize,
    rng: &mut R,
    counters: &mut Counters,
) {
    substep_21_counted(engine, partition, seeds, eligible, rng, counters);
    substep_22_counted(engine, partition, eligible, merge_limit, rng, counters);
    substep_23_counted(engine, partition, counters);
}

/// Substep 2.1: initialize regions from seeds.
pub fn substep_21_initialize<R: Rng>(
    engine: &ConstraintEngine<'_>,
    partition: &mut Partition,
    seeds: &[u32],
    eligible: &[bool],
    rng: &mut R,
) {
    substep_21_counted(
        engine,
        partition,
        seeds,
        eligible,
        rng,
        &mut Counters::new(),
    );
}

fn substep_21_counted<R: Rng>(
    engine: &ConstraintEngine<'_>,
    partition: &mut Partition,
    seeds: &[u32],
    eligible: &[bool],
    rng: &mut R,
    counters: &mut Counters,
) {
    let mut in_range = Vec::new();
    let mut extremes = Vec::new();
    for &s in seeds {
        debug_assert!(eligible[s as usize]);
        charge_avg_checks(engine, counters);
        match classify_area(engine, s) {
            AvgClass::InRange => in_range.push(s),
            AvgClass::Low | AvgClass::High => extremes.push(s),
        }
    }
    // Maximize p: every in-range seed starts its own region.
    in_range.shuffle(rng);
    for s in in_range {
        if partition.is_unassigned(s) {
            partition.create_region(engine, &[s]);
            counters.inc(CounterKind::RegionsCreated);
        }
    }
    // Algorithm 1: merge out-of-range seeds with neighbors until the AVG
    // constraints hold, or revert.
    extremes.shuffle(rng);
    merge_areas_algorithm1(engine, partition, &extremes, eligible, counters);
}

/// Algorithm 1 (paper): grow a temporary region from each out-of-range area,
/// adding unassigned neighbors from beyond the opposite bound until the AVG
/// range is met; revert if the neighborhood is exhausted.
fn merge_areas_algorithm1(
    engine: &ConstraintEngine<'_>,
    partition: &mut Partition,
    areas: &[u32],
    eligible: &[bool],
    counters: &mut Counters,
) {
    let graph = engine.instance().graph();
    for &start in areas {
        if !partition.is_unassigned(start) {
            continue;
        }
        let mut temp = vec![start];
        let mut agg = engine.compute_fresh(&[start]);
        let committed = loop {
            charge_avg_checks(engine, counters);
            if avg_satisfied(engine, &agg) {
                break true;
            }
            let Some((ci, dir)) = first_violated_avg(engine, &agg) else {
                break true;
            };
            let c = &engine.constraints()[ci];
            // Frontier: unassigned eligible neighbors of the temp region.
            let mut candidate = None;
            'search: for &m in &temp {
                for &nb in graph.neighbors(m) {
                    if !eligible[nb as usize] || !partition.is_unassigned(nb) || temp.contains(&nb)
                    {
                        continue;
                    }
                    let v = engine.area_value(ci, nb);
                    let moves_towards = match dir {
                        AvgClass::Low => v > c.high,
                        AvgClass::High => v < c.low,
                        AvgClass::InRange => unreachable!(),
                    };
                    if moves_towards {
                        candidate = Some(nb);
                        break 'search;
                    }
                }
            }
            match candidate {
                Some(nb) => {
                    temp.push(nb);
                    engine.add_area(&mut agg, nb);
                }
                None => break false, // revert: areas stay unassigned
            }
        };
        if committed {
            partition.create_region(engine, &temp);
            counters.inc(CounterKind::RegionsCreated);
        }
    }
}

/// Substep 2.2: assign remaining unassigned areas in two rounds.
pub fn substep_22_assign<R: Rng>(
    engine: &ConstraintEngine<'_>,
    partition: &mut Partition,
    eligible: &[bool],
    merge_limit: usize,
    rng: &mut R,
) {
    substep_22_counted(
        engine,
        partition,
        eligible,
        merge_limit,
        rng,
        &mut Counters::new(),
    );
}

fn substep_22_counted<R: Rng>(
    engine: &ConstraintEngine<'_>,
    partition: &mut Partition,
    eligible: &[bool],
    merge_limit: usize,
    rng: &mut R,
    counters: &mut Counters,
) {
    // Round 1: direct attachment, repeated until fixpoint — assigning an
    // area may unlock its neighbors (paper §VII-B2).
    while partition.unassigned_count() > 0 {
        let mut unassigned: Vec<u32> = partition
            .unassigned_iter()
            .filter(|&a| eligible[a as usize])
            .collect();
        unassigned.shuffle(rng);
        let mut changed = false;
        for a in unassigned {
            if !partition.is_unassigned(a) {
                continue;
            }
            let mut nbr_regions = partition.regions_adjacent_to_area(engine, a);
            if nbr_regions.is_empty() {
                continue;
            }
            nbr_regions.shuffle(rng);
            charge_avg_checks(engine, counters);
            match classify_area(engine, a) {
                AvgClass::InRange => {
                    // Safe for AVG by convexity of the range.
                    partition.add_to_region(engine, nbr_regions[0], a);
                    changed = true;
                }
                AvgClass::Low | AvgClass::High => {
                    if let Some(&r) = nbr_regions.iter().find(|&&r| {
                        charge_avg_checks(engine, counters);
                        add_preserves_avg(engine, &partition.region(r).agg, a)
                    }) {
                        partition.add_to_region(engine, r, a);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Round 2: absorb stubborn areas by merging a neighbor region with one
    // of its neighbor regions, bounded by the merge limit per area.
    let mut remaining: Vec<u32> = partition
        .unassigned_iter()
        .filter(|&a| eligible[a as usize] && classify_area(engine, a) != AvgClass::InRange)
        .collect();
    remaining.shuffle(rng);
    for a in remaining {
        if !partition.is_unassigned(a) {
            continue;
        }
        let mut trials = 0usize;
        let nbr_regions = partition.regions_adjacent_to_area(engine, a);
        'outer: for &r in &nbr_regions {
            if !partition.is_live(r) {
                continue;
            }
            let second_ring = partition.neighbor_regions(engine, r);
            for r2 in second_ring {
                if trials >= merge_limit {
                    break 'outer;
                }
                trials += 1;
                counters.inc(CounterKind::MergeTrials);
                if !partition.is_live(r) || !partition.is_live(r2) || r == r2 {
                    continue;
                }
                charge_avg_checks(engine, counters);
                if merged_satisfies_avg(
                    engine,
                    &partition.region(r).agg,
                    &partition.region(r2).agg,
                    a,
                ) {
                    partition.merge_regions(engine, r, r2);
                    counters.inc(CounterKind::RegionsMerged);
                    partition.add_to_region(engine, r, a);
                    break 'outer;
                }
            }
        }
    }
}

/// Substep 2.3: merge regions until each satisfies every MIN/MAX constraint.
///
/// Merging two AVG-satisfying regions keeps AVG satisfied (range convexity),
/// and a neighbor that satisfies a violated extrema constraint donates a
/// witness area, so the merged region satisfies it too.
pub fn substep_23_combine(engine: &ConstraintEngine<'_>, partition: &mut Partition) {
    substep_23_counted(engine, partition, &mut Counters::new());
}

fn substep_23_counted(
    engine: &ConstraintEngine<'_>,
    partition: &mut Partition,
    counters: &mut Counters,
) {
    let extrema: Vec<usize> = engine
        .indices_of(Aggregate::Min)
        .iter()
        .chain(engine.indices_of(Aggregate::Max))
        .copied()
        .collect();
    if extrema.is_empty() {
        return;
    }
    loop {
        let mut progressed = false;
        let ids: Vec<RegionId> = partition.region_ids().collect();
        for id in ids {
            if !partition.is_live(id) {
                continue;
            }
            let violated: Vec<usize> = extrema
                .iter()
                .copied()
                .filter(|&ci| {
                    counters.inc(check_counter(engine.constraints()[ci].aggregate));
                    !engine.satisfied(&partition.region(id).agg, ci)
                })
                .collect();
            if violated.is_empty() {
                continue;
            }
            let nbrs = partition.neighbor_regions(engine, id);
            // Prefer a neighbor that witnesses every violated constraint.
            let full_fix = nbrs.iter().copied().find(|&r| {
                violated
                    .iter()
                    .all(|&ci| engine.satisfied(&partition.region(r).agg, ci))
            });
            let partial_fix = full_fix.or_else(|| {
                nbrs.iter().copied().find(|&r| {
                    violated
                        .iter()
                        .any(|&ci| engine.satisfied(&partition.region(r).agg, ci))
                })
            });
            match partial_fix.or_else(|| nbrs.first().copied()) {
                Some(r) => {
                    partition.merge_regions(engine, id, r);
                    counters.inc(CounterKind::RegionsMerged);
                    progressed = true;
                }
                None => {
                    // Isolated region that cannot be fixed.
                    partition.dissolve_region(id);
                    counters.inc(CounterKind::RegionsFreed);
                    progressed = true;
                }
            }
        }
        // Done when a full pass finds no violated region (progressed stays
        // false) — or nothing more can change.
        if !progressed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttributeTable;
    use crate::constraint::{Constraint, ConstraintSet};
    use crate::feasibility::feasibility_phase;
    use crate::instance::EmpInstance;
    use emp_graph::ContiguityGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The paper's running example (Figures 1-4): 3x3 lattice, s = 1..9.
    fn paper_instance() -> EmpInstance {
        let graph = ContiguityGraph::lattice(3, 3);
        let mut attrs = AttributeTable::new(9);
        attrs
            .push_column("s", (1..=9).map(|v| v as f64).collect())
            .unwrap();
        EmpInstance::new(graph, attrs, "s").unwrap()
    }

    fn run_growth(inst: &EmpInstance, set: &ConstraintSet, seed: u64) -> (Partition, Vec<bool>) {
        let engine = ConstraintEngine::compile(inst, set).unwrap();
        let report = feasibility_phase(&engine);
        assert!(!report.is_infeasible());
        let mut eligible = vec![true; inst.len()];
        for &a in &report.invalid_areas {
            eligible[a as usize] = false;
        }
        let mut part = Partition::new(inst.len());
        let mut rng = StdRng::seed_from_u64(seed);
        region_growing(&engine, &mut part, &report.seeds, &eligible, 3, &mut rng);
        (part, eligible)
    }

    #[test]
    fn classify_against_avg() {
        let inst = paper_instance();
        let set = ConstraintSet::new().with(Constraint::avg("s", 4.0, 5.0).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        assert_eq!(classify_area(&eng, 0), AvgClass::Low); // s=1
        assert_eq!(classify_area(&eng, 3), AvgClass::InRange); // s=4
        assert_eq!(classify_area(&eng, 4), AvgClass::InRange); // s=5
        assert_eq!(classify_area(&eng, 8), AvgClass::High); // s=9
    }

    #[test]
    fn no_avg_constraint_classifies_in_range() {
        let inst = paper_instance();
        let set = ConstraintSet::new().with(Constraint::min("s", 2.0, 4.0).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        assert_eq!(classify_area(&eng, 0), AvgClass::InRange);
        assert_eq!(classify_area(&eng, 8), AvgClass::InRange);
    }

    /// Paper example in §V-B Step 2: constraints {MIN in [2,4], MAX in [6,7],
    /// AVG in [4,5]} on the running example. Areas a1, a8, a9 (s=1,8,9) are
    /// filtered; all regions produced must satisfy all three constraints.
    #[test]
    fn paper_example_regions_satisfy_extrema_and_avg() {
        let inst = paper_instance();
        let set = ConstraintSet::new()
            .with(Constraint::min("s", 2.0, 4.0).unwrap())
            .with(Constraint::max("s", 6.0, 7.0).unwrap())
            .with(Constraint::avg("s", 4.0, 5.0).unwrap());
        for seed in 0..10u64 {
            let (part, _) = run_growth(&inst, &set, seed);
            let eng = ConstraintEngine::compile(&inst, &set).unwrap();
            assert!(part.p() >= 1, "seed {seed}: no regions");
            for id in part.region_ids() {
                let agg = &part.region(id).agg;
                for ci in 0..3 {
                    assert!(
                        eng.satisfied(agg, ci),
                        "seed {seed}: region {id} violates constraint {ci}"
                    );
                }
            }
        }
    }

    #[test]
    fn grown_regions_are_contiguous() {
        let inst = paper_instance();
        let set = ConstraintSet::new().with(Constraint::avg("s", 4.0, 6.0).unwrap());
        for seed in 0..10u64 {
            let (part, _) = run_growth(&inst, &set, seed);
            for members in part.extract_regions() {
                assert!(
                    emp_graph::subgraph::is_connected_subset(inst.graph(), &members),
                    "seed {seed}: region {members:?} not contiguous"
                );
            }
        }
    }

    #[test]
    fn avg_only_query_assigns_everything_when_possible() {
        // AVG in [1, 9] covers every area: everything should be assigned and
        // every area become its own region (all seeds in range, p maximal).
        let inst = paper_instance();
        let set = ConstraintSet::new().with(Constraint::avg("s", 1.0, 9.0).unwrap());
        let (part, _) = run_growth(&inst, &set, 7);
        assert_eq!(part.p(), 9);
        assert!(part.unassigned().is_empty());
    }

    #[test]
    fn no_constraints_gives_singletons() {
        let inst = paper_instance();
        let set = ConstraintSet::new();
        let (part, _) = run_growth(&inst, &set, 3);
        assert_eq!(part.p(), 9);
    }

    #[test]
    fn tight_avg_leaves_unassigned() {
        // AVG in [100, 200] is unreachable: every area stays unassigned and
        // no regions form.
        let inst = paper_instance();
        let set = ConstraintSet::new().with(Constraint::avg("s", 100.0, 200.0).unwrap());
        let (part, _) = run_growth(&inst, &set, 1);
        assert_eq!(part.p(), 0);
        assert_eq!(part.unassigned().len(), 9);
    }

    #[test]
    fn algorithm1_combines_low_and_high() {
        // 2x2 block with s = [1, 9, 9, 1] and AVG in [4.5, 5.5]: no single
        // area satisfies, but any low/high pair averages 5. Every low area
        // has two high neighbors, so Algorithm 1 always finds two regions.
        let graph = ContiguityGraph::lattice(2, 2);
        let mut attrs = AttributeTable::new(4);
        attrs.push_column("s", vec![1.0, 9.0, 9.0, 1.0]).unwrap();
        let inst = EmpInstance::new(graph, attrs, "s").unwrap();
        let set = ConstraintSet::new().with(Constraint::avg("s", 4.5, 5.5).unwrap());
        for seed in 0..8u64 {
            let (part, _) = run_growth(&inst, &set, seed);
            assert_eq!(part.p(), 2, "seed {seed}");
            assert!(part.unassigned().is_empty(), "seed {seed}");
            let eng = ConstraintEngine::compile(&inst, &set).unwrap();
            for id in part.region_ids() {
                assert!(eng.satisfied(&part.region(id).agg, 0));
            }
        }
    }

    #[test]
    fn substep_23_merges_min_only_region_with_max_witness() {
        // Paper Figure 4: R_red = {a4} holds only a MIN seed; it must merge
        // with a neighbor satisfying the MAX constraint.
        let inst = paper_instance();
        let set = ConstraintSet::new()
            .with(Constraint::min("s", 2.0, 4.0).unwrap())
            .with(Constraint::max("s", 6.0, 7.0).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(9);
        // Region layout of Figure 2b: R_red={a4}, R_blue={a2,a5,a6},
        // R_green={a3,a7} — indices 3; 1,4,5; 2,6.
        part.create_region(&eng, &[3]);
        part.create_region(&eng, &[1, 4, 5]);
        part.create_region(&eng, &[2, 6]);
        substep_23_combine(&eng, &mut part);
        assert_eq!(part.p(), 2);
        for id in part.region_ids() {
            assert!(eng.satisfied(&part.region(id).agg, 0), "MIN violated");
            assert!(eng.satisfied(&part.region(id).agg, 1), "MAX violated");
        }
    }

    #[test]
    fn counted_growth_accounts_region_lifecycle() {
        // No constraints: every area becomes a singleton region and nothing
        // merges, so the lifecycle counters are exact.
        let inst = paper_instance();
        let set = ConstraintSet::new();
        let engine = ConstraintEngine::compile(&inst, &set).unwrap();
        let report = feasibility_phase(&engine);
        let eligible = vec![true; 9];
        let mut part = Partition::new(9);
        let mut rng = StdRng::seed_from_u64(2);
        let mut c = Counters::new();
        region_growing_counted(
            &engine,
            &mut part,
            &report.seeds,
            &eligible,
            3,
            &mut rng,
            &mut c,
        );
        assert_eq!(c.get(CounterKind::RegionsCreated) as usize, part.p());
        assert_eq!(c.get(CounterKind::RegionsMerged), 0);
        assert_eq!(c.get(CounterKind::RegionsFreed), 0);
    }

    #[test]
    fn round2_merging_respects_merge_limit() {
        // Path 0-1-2 with s = [4, 6, 9] and AVG in [4, 6.5].
        // Areas 0 and 1 are in range (singleton regions); area 2 is high.
        // Attaching 2 to {1} gives avg 7.5 (violates); merging {1} with its
        // neighbor {0} and absorbing 2 gives avg 19/3 ≈ 6.33 (satisfies).
        // Round 2 must perform that merge — unless the merge limit is 0.
        let set = ConstraintSet::new().with(Constraint::avg("s", 4.0, 6.5).unwrap());
        for (merge_limit, expect_assigned) in [(0usize, false), (3usize, true)] {
            let graph = ContiguityGraph::lattice(3, 1);
            let mut attrs = AttributeTable::new(3);
            attrs.push_column("s", vec![4.0, 6.0, 9.0]).unwrap();
            let inst = EmpInstance::new(graph, attrs, "s").unwrap();
            let engine = ConstraintEngine::compile(&inst, &set).unwrap();
            let report = feasibility_phase(&engine);
            let eligible = vec![true; 3];
            let mut rng = StdRng::seed_from_u64(5);
            let mut part = Partition::new(3);
            region_growing(
                &engine,
                &mut part,
                &report.seeds,
                &eligible,
                merge_limit,
                &mut rng,
            );
            if expect_assigned {
                assert!(part.unassigned().is_empty(), "merge_limit {merge_limit}");
                assert_eq!(part.p(), 1);
            } else {
                assert_eq!(part.unassigned(), vec![2], "merge_limit {merge_limit}");
                assert_eq!(part.p(), 2);
            }
        }
    }
}
