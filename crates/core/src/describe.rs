//! Output statistics reporting.
//!
//! The paper notes (§VII-B3) that "FaCT algorithm reports output statistics
//! to users so they are equipped with information about the impact of
//! different threshold ranges on the given dataset, and are able to tune
//! query parameters insightfully." This module produces those statistics:
//! a per-region table of every constraint's aggregate value plus a
//! solution-level summary.

use crate::constraint::ConstraintSet;
use crate::engine::ConstraintEngine;
use crate::error::EmpError;
use crate::instance::EmpInstance;
use crate::solution::Solution;
use std::fmt;

/// Per-region statistics: one aggregate value per constraint.
#[derive(Clone, Debug, PartialEq)]
pub struct RegionStats {
    /// Index into [`Solution::regions`].
    pub region: usize,
    /// Number of member areas.
    pub size: usize,
    /// Aggregate value per constraint, in constraint order.
    pub values: Vec<f64>,
    /// Slack to the nearest bound per constraint (negative = violated).
    pub slack: Vec<f64>,
}

/// Solution-level summary statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct SolutionSummary {
    /// Number of regions `p`.
    pub p: usize,
    /// Unassigned-area count.
    pub unassigned: usize,
    /// Fraction of areas unassigned.
    pub unassigned_fraction: f64,
    /// Smallest region size.
    pub min_region_size: usize,
    /// Largest region size.
    pub max_region_size: usize,
    /// Mean region size.
    pub mean_region_size: f64,
    /// Total objective score (heterogeneity under the default objective).
    pub objective: f64,
}

/// The full report.
#[derive(Clone, Debug, PartialEq)]
pub struct SolutionReport {
    /// Constraint display strings, in order.
    pub constraint_labels: Vec<String>,
    /// Per-region rows.
    pub regions: Vec<RegionStats>,
    /// Solution summary.
    pub summary: SolutionSummary,
}

/// Computes the full statistics report for a solution.
pub fn describe(
    instance: &EmpInstance,
    constraints: &ConstraintSet,
    solution: &Solution,
) -> Result<SolutionReport, EmpError> {
    let engine = ConstraintEngine::compile(instance, constraints)?;
    let constraint_labels: Vec<String> = constraints
        .constraints()
        .iter()
        .map(|c| c.to_string())
        .collect();

    let mut regions = Vec::with_capacity(solution.regions.len());
    for (ri, members) in solution.regions.iter().enumerate() {
        let agg = engine.compute_fresh(members);
        let mut values = Vec::with_capacity(engine.constraints().len());
        let mut slack = Vec::with_capacity(engine.constraints().len());
        for (ci, c) in engine.constraints().iter().enumerate() {
            let v = engine.value(&agg, ci);
            values.push(v);
            let lower_slack = if c.low.is_finite() {
                v - c.low
            } else {
                f64::INFINITY
            };
            let upper_slack = if c.high.is_finite() {
                c.high - v
            } else {
                f64::INFINITY
            };
            slack.push(lower_slack.min(upper_slack));
        }
        regions.push(RegionStats {
            region: ri,
            size: members.len(),
            values,
            slack,
        });
    }

    let sizes: Vec<usize> = solution.regions.iter().map(Vec::len).collect();
    let summary = SolutionSummary {
        p: solution.p(),
        unassigned: solution.unassigned.len(),
        unassigned_fraction: solution.unassigned_fraction(),
        min_region_size: sizes.iter().copied().min().unwrap_or(0),
        max_region_size: sizes.iter().copied().max().unwrap_or(0),
        mean_region_size: if sizes.is_empty() {
            0.0
        } else {
            sizes.iter().sum::<usize>() as f64 / sizes.len() as f64
        },
        objective: instance.objective().score(&solution.regions),
    };

    Ok(SolutionReport {
        constraint_labels,
        regions,
        summary,
    })
}

impl SolutionReport {
    /// The region with the least slack for constraint `ci` — the one a user
    /// should look at when tightening that bound.
    pub fn tightest_region(&self, ci: usize) -> Option<&RegionStats> {
        self.regions.iter().min_by(|a, b| {
            a.slack[ci]
                .partial_cmp(&b.slack[ci])
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }
}

impl fmt::Display for SolutionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "p = {}, unassigned = {} ({:.1}%), region sizes {}..{} (mean {:.1}), objective {:.1}",
            self.summary.p,
            self.summary.unassigned,
            self.summary.unassigned_fraction * 100.0,
            self.summary.min_region_size,
            self.summary.max_region_size,
            self.summary.mean_region_size,
            self.summary.objective,
        )?;
        write!(f, "region | size")?;
        for label in &self.constraint_labels {
            write!(f, " | {label}")?;
        }
        writeln!(f)?;
        for r in &self.regions {
            write!(f, "{:6} | {:4}", r.region, r.size)?;
            for v in &r.values {
                write!(f, " | {v:.1}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttributeTable;
    use crate::constraint::Constraint;
    use crate::solver::{solve, FactConfig};
    use emp_graph::ContiguityGraph;

    fn setup() -> (EmpInstance, ConstraintSet, Solution) {
        let graph = ContiguityGraph::lattice(4, 4);
        let mut attrs = AttributeTable::new(16);
        attrs
            .push_column("POP", (0..16).map(|i| 100.0 + i as f64 * 10.0).collect())
            .unwrap();
        let instance = EmpInstance::new(graph, attrs, "POP").unwrap();
        let set = ConstraintSet::new()
            .with(Constraint::sum("POP", 300.0, f64::INFINITY).unwrap())
            .with(Constraint::count(2.0, 8.0).unwrap());
        let report = solve(&instance, &set, &FactConfig::seeded(1)).unwrap();
        (instance, set, report.solution)
    }

    #[test]
    fn describes_every_region_and_constraint() {
        let (instance, set, solution) = setup();
        let report = describe(&instance, &set, &solution).unwrap();
        assert_eq!(report.regions.len(), solution.p());
        assert_eq!(report.constraint_labels.len(), 2);
        for r in &report.regions {
            assert_eq!(r.values.len(), 2);
            assert!(r.values[0] >= 300.0, "SUM satisfied");
            assert!(r.slack.iter().all(|&s| s >= 0.0), "no violations");
            assert_eq!(r.values[1] as usize, r.size, "COUNT equals size");
        }
        assert_eq!(report.summary.p, solution.p());
        assert!(report.summary.mean_region_size >= 2.0);
    }

    #[test]
    fn tightest_region_has_min_slack() {
        let (instance, set, solution) = setup();
        let report = describe(&instance, &set, &solution).unwrap();
        let tight = report.tightest_region(0).unwrap();
        for r in &report.regions {
            assert!(tight.slack[0] <= r.slack[0]);
        }
    }

    #[test]
    fn display_renders_table() {
        let (instance, set, solution) = setup();
        let report = describe(&instance, &set, &solution).unwrap();
        let text = report.to_string();
        assert!(text.contains("p = "));
        assert!(text.contains("SUM(POP)"));
        assert!(text.lines().count() >= 2 + report.regions.len());
    }

    #[test]
    fn empty_solution_summary() {
        let (instance, set, _) = setup();
        let empty = Solution {
            regions: vec![],
            assignment: vec![None; 16],
            unassigned: (0..16).collect(),
            heterogeneity: 0.0,
        };
        let report = describe(&instance, &set, &empty).unwrap();
        assert_eq!(report.summary.p, 0);
        assert_eq!(report.summary.min_region_size, 0);
        assert_eq!(report.summary.mean_region_size, 0.0);
        assert!(report.tightest_region(0).is_none());
    }
}
