//! Parallel sharded move evaluation for the tabu local search (DESIGN.md
//! §12).
//!
//! Each iteration the boundary-area list is split into `jobs` contiguous
//! shards. A **persistent** scoped worker pool — spawned once per search,
//! reused across iterations, mirroring the determinism discipline of
//! `emp-bench`'s `sched` pool — evaluates shards `1..jobs` while the main
//! thread evaluates shard `0`, each with thread-local scratch (donor-verdict
//! cache, destination buffer) and a private [`Counters`] merged at join
//! time. Per-shard winners are reduced under the same strict total order
//! (ΔH, then area id, then destination id) as the serial scan; the order is
//! strict and every admissibility filter is intrinsic to the candidate, so
//! the reduced winner equals the serial winner and the applied move
//! sequence, `p`, and `H` are byte-identical for any `jobs` value.
//!
//! Shared state (partition, tabu table, boundary list, articulation and
//! slack caches) is handed to workers as raw pointers inside a [`Task`]
//! under a rendezvous protocol: workers dereference them only between
//! receiving a task and sending its result, and the main thread mutates
//! them only while every worker is idle (all results collected). Unlike the
//! serial path's lazy caches, the main thread keeps the articulation and
//! slack caches **eagerly fresh** for exactly the regions workers may query
//! (donor-unblocked, ≥ 2 members), refreshing the two regions an applied
//! move touches.

use crate::control::{SolveBudget, StopReason};
use crate::engine::ConstraintEngine;
use crate::partition::{Partition, RegionId};
use crate::tabu::{
    beats, debug_check_drift, donor_keeps_constraints, donor_value_blocked, is_boundary,
    receiver_keeps_constraints, BoundarySet, DonorEntry, DonorVerdict, Move, SlackVerdict,
    TabuConfig, TabuOutcome, TabuResume, TabuStats, TabuTable, RESYNC_INTERVAL,
};
use emp_graph::articulation::{articulation_points_into, ArticulationScratch};
use emp_obs::{CounterKind, Counters, HistKind, Recorder};
use std::sync::mpsc;

/// Read-only snapshot of the shared search state, sent to workers each
/// iteration. Raw pointers because the referents live on the main thread's
/// stack and are re-borrowed every iteration; validity is guaranteed by the
/// rendezvous protocol (module docs), not by lifetimes.
#[derive(Clone, Copy)]
struct SharedView {
    partition: *const Partition,
    tabu: *const TabuTable,
    boundary: *const [u32],
    arts: *const [Option<Vec<u32>>],
    slack: *const [SlackVerdict],
    versions: *const [u64],
}

// SAFETY: the pointed-to state is only read by workers, and only between
// task receipt and result send; the main thread never mutates it while a
// task is outstanding.
unsafe impl Send for SharedView {}

/// One iteration's unit of work for a worker: evaluate boundary positions
/// `lo..hi` against the shared state.
struct Task {
    view: SharedView,
    lo: usize,
    hi: usize,
    moves_done: usize,
    current_h: f64,
    best_h: f64,
}

/// Thread-local evaluation scratch; one per worker and one for the main
/// thread's shard.
struct EvalScratch {
    /// Memoized donor verdicts, version-stamped like the serial path's.
    donor_cache: Vec<DonorEntry>,
    /// Candidate destination regions of the current area.
    dests: Vec<RegionId>,
    counters: Counters,
}

impl EvalScratch {
    fn new(n: usize) -> Self {
        EvalScratch {
            donor_cache: vec![DonorEntry::EMPTY; n],
            dests: Vec::new(),
            counters: Counters::new(),
        }
    }
}

/// Contiguous shard `w` of `len` items split `jobs` ways.
fn shard_bounds(len: usize, jobs: usize, w: usize) -> (usize, usize) {
    (w * len / jobs, (w + 1) * len / jobs)
}

/// The serial `select_move` filter chain over one boundary shard. Mirrors
/// `NeighborhoodState::select_move` exactly — members gate, region- and
/// area-level donor slack prunes, memoized donor verdict (articulation
/// lookup + donor constraints), sorted/deduped destinations, delta,
/// incumbent order, tabu/aspiration, receiver slack prune, receiver
/// constraints — against a *shard-local* incumbent. Incumbent pruning only skips work (every filter is intrinsic
/// to the candidate), so the shard winner set reduces to the serial winner;
/// per-shard counters may differ across `jobs` values, the selected move
/// cannot.
#[allow(clippy::too_many_arguments)]
fn eval_shard(
    engine: &ConstraintEngine<'_>,
    partition: &Partition,
    tabu: &TabuTable,
    boundary: &[u32],
    arts: &[Option<Vec<u32>>],
    slack: &[SlackVerdict],
    versions: &[u64],
    moves_done: usize,
    current_h: f64,
    best_h: f64,
    ws: &mut EvalScratch,
) -> Option<Move> {
    let graph = engine.instance().graph();
    let mut best: Option<Move> = None;
    let mut walked = 0u64;
    ws.counters.inc(CounterKind::TabuShardsEvaluated);
    for &area in boundary {
        let from = partition
            .region_of(area)
            .expect("boundary areas are assigned");
        if partition.region(from).members.len() <= 1 {
            continue; // p must not change
        }
        if slack[from as usize].donor_blocked {
            ws.counters.inc(CounterKind::TabuSlackPruneSkips);
            continue;
        }
        let version = versions[from as usize];
        let entry = ws.donor_cache[area as usize];
        let verdict = if entry.region == from && entry.version == version {
            entry.verdict
        } else if donor_value_blocked(engine, &partition.region(from).agg, area) {
            // Area-level slack gate, mirroring the serial path exactly
            // (same float operations, see `donor_value_blocked`); its hit
            // is a proof, so the full check is skipped entirely.
            let verdict = DonorVerdict::SlackBlocked;
            ws.donor_cache[area as usize] = DonorEntry {
                region: from,
                version,
                verdict,
            };
            verdict
        } else {
            // The maintenance invariant guarantees a fresh articulation
            // cache for every donor-unblocked region with ≥ 2 members; a
            // lookup is a cache hit by construction.
            let arts_from = arts[from as usize]
                .as_deref()
                .expect("eager articulation cache for unblocked donor");
            ws.counters.inc(CounterKind::ArticulationQueries);
            ws.counters.inc(CounterKind::ArticulationCacheHits);
            let ok = arts_from.binary_search(&area).is_err()
                && donor_keeps_constraints(engine, partition, area, from, &mut ws.counters);
            let verdict = if ok {
                DonorVerdict::Admissible
            } else {
                DonorVerdict::Rejected
            };
            ws.donor_cache[area as usize] = DonorEntry {
                region: from,
                version,
                verdict,
            };
            verdict
        };
        match verdict {
            DonorVerdict::SlackBlocked => {
                ws.counters.inc(CounterKind::TabuSlackPruneSkips);
                continue;
            }
            DonorVerdict::Rejected => {
                ws.counters.inc(CounterKind::TabuRejectedInfeasible);
                continue;
            }
            DonorVerdict::Admissible => {}
        }
        let neighbors = graph.neighbors(area);
        walked += neighbors.len() as u64;
        ws.dests.clear();
        ws.dests.extend(
            neighbors
                .iter()
                .filter_map(|&nb| partition.region_of(nb))
                .filter(|&r| r != from),
        );
        ws.dests.sort_unstable();
        ws.dests.dedup();
        for &to in &ws.dests {
            ws.counters.inc(CounterKind::TabuMovesEvaluated);
            let delta = partition.move_objective_delta(engine, area, from, to);
            if !beats(delta, area, to, &best) {
                continue; // cannot beat the shard incumbent; skip checks
            }
            let aspires = current_h + delta < best_h - 1e-9;
            if tabu.is_tabu(area, to, moves_done) && !aspires {
                ws.counters.inc(CounterKind::TabuRejectedTabu);
                continue;
            }
            if slack[to as usize].receiver_blocked {
                ws.counters.inc(CounterKind::TabuSlackPruneSkips);
                continue;
            }
            if !receiver_keeps_constraints(engine, partition, area, to, &mut ws.counters) {
                ws.counters.inc(CounterKind::TabuRejectedInfeasible);
                continue;
            }
            best = Some(Move {
                area,
                from,
                to,
                delta,
            });
        }
    }
    ws.counters.add(CounterKind::NeighborEntriesWalked, walked);
    best
}

/// Eagerly (re)computes region `id`'s slack verdict and articulation cache
/// so workers can read both without synchronization. The articulation
/// points are computed only when a worker could need them (donor-unblocked,
/// ≥ 2 members); otherwise the entry is parked as `None`.
#[allow(clippy::too_many_arguments)]
fn refresh_region(
    engine: &ConstraintEngine<'_>,
    partition: &Partition,
    id: RegionId,
    arts: &mut [Option<Vec<u32>>],
    slack: &mut [SlackVerdict],
    spare: &mut Vec<Vec<u32>>,
    scratch: &mut ArticulationScratch,
    counters: &mut Counters,
) {
    let region = partition.region(id);
    let verdict = SlackVerdict::compute(engine, &region.agg, &region.members);
    slack[id as usize] = verdict;
    let slot = &mut arts[id as usize];
    if let Some(buf) = slot.take() {
        spare.push(buf);
        counters.inc(CounterKind::ArticulationCacheInvalidations);
    }
    if !verdict.donor_blocked && region.members.len() > 1 {
        counters.inc(CounterKind::ArticulationQueries);
        counters.inc(CounterKind::ArticulationCacheMisses);
        let mut buf = spare.pop().unwrap_or_default();
        articulation_points_into(
            engine.instance().graph(),
            &region.members,
            scratch,
            &mut buf,
        );
        *slot = Some(buf);
    }
}

/// [`crate::tabu::tabu_search_budgeted`] on the sharded worker pool.
/// Selects the identical move sequence (and therefore identical `p`, `H`,
/// trajectory, and resume state) as the serial incremental path; only
/// scan-order-dependent telemetry (evaluation/rejection counters) may
/// differ. The budget is polled once per iteration at the loop top, exactly
/// like the serial loop, so checkpoint/resume round-trips stay equivalent.
pub(crate) fn tabu_search_parallel(
    engine: &ConstraintEngine<'_>,
    partition: &mut Partition,
    config: &TabuConfig,
    budget: &SolveBudget,
    resume: Option<TabuResume>,
    rec: &mut Recorder,
) -> TabuOutcome {
    debug_assert!(config.jobs > 1 && config.incremental);
    let jobs = config.jobs;
    let n = partition.len();
    let fresh_start = resume.is_none();
    let TabuResume {
        iterations,
        moves,
        mut no_improve,
        initial,
        mut current_h,
        mut best_h,
        mut best_assignment,
        mut tabu,
    } = resume.unwrap_or_else(|| TabuResume::fresh(engine, partition, config));
    let mut stats = TabuStats {
        iterations,
        moves,
        initial,
        best: best_h,
    };
    if fresh_start {
        rec.trajectory_point(0, initial);
    }

    // Shared caches, owned by the main thread, read by workers via views.
    let slots = partition.region_slots();
    let mut boundary = BoundarySet::new(n);
    for area in 0..n as u32 {
        if is_boundary(engine, partition, area) {
            boundary.insert(area);
        }
    }
    rec.counters().record_max(
        CounterKind::BoundaryAreasPeak,
        boundary.as_slice().len() as u64,
    );
    let mut arts: Vec<Option<Vec<u32>>> = (0..slots).map(|_| None).collect();
    let mut slack: Vec<SlackVerdict> = vec![SlackVerdict::default(); slots];
    let mut versions: Vec<u64> = vec![0; slots];
    let mut spare: Vec<Vec<u32>> = Vec::new();
    let mut scratch = ArticulationScratch::default();
    let mut main_ws = EvalScratch::new(n);
    for id in partition.region_ids() {
        refresh_region(
            engine,
            partition,
            id,
            &mut arts,
            &mut slack,
            &mut spare,
            &mut scratch,
            &mut main_ws.counters,
        );
    }

    enum LoopEnd {
        Converged,
        Interrupted(StopReason),
    }

    let outcome = crossbeam::thread::scope(|scope| {
        let (res_tx, res_rx) = mpsc::channel::<Option<Move>>();
        let mut task_txs: Vec<mpsc::Sender<Task>> = Vec::with_capacity(jobs - 1);
        let mut handles = Vec::with_capacity(jobs - 1);
        for _ in 1..jobs {
            let (tx, rx) = mpsc::channel::<Task>();
            task_txs.push(tx);
            let res_tx = res_tx.clone();
            handles.push(scope.spawn(move |_| {
                let mut ws = EvalScratch::new(n);
                while let Ok(task) = rx.recv() {
                    // SAFETY: the main thread sent this task and will not
                    // mutate the viewed state until it has received one
                    // result per dispatched task (rendezvous protocol).
                    let view = task.view;
                    let winner = unsafe {
                        let boundary: &[u32] = &*view.boundary;
                        eval_shard(
                            engine,
                            &*view.partition,
                            &*view.tabu,
                            &boundary[task.lo..task.hi],
                            &*view.arts,
                            &*view.slack,
                            &*view.versions,
                            task.moves_done,
                            task.current_h,
                            task.best_h,
                            &mut ws,
                        )
                    };
                    if res_tx.send(winner).is_err() {
                        break;
                    }
                }
                ws.counters
            }));
        }

        let end = loop {
            if !(no_improve < config.max_no_improve && stats.iterations < config.max_iterations) {
                break LoopEnd::Converged;
            }
            rec.counters().inc(CounterKind::CancelPolls);
            if let Some(reason) = budget.poll() {
                if reason == StopReason::DeadlineExceeded {
                    rec.counters().inc(CounterKind::DeadlineExceeded);
                }
                debug_check_drift(engine, partition, current_h);
                break LoopEnd::Interrupted(reason);
            }
            stats.iterations += 1;
            rec.hists()
                .record(HistKind::TabuBoundary, boundary.as_slice().len() as u64);
            rec.counters().inc(CounterKind::TabuParallelIterations);
            let len = boundary.as_slice().len();
            let view = SharedView {
                partition: &*partition,
                tabu: &tabu,
                boundary: boundary.as_slice(),
                arts: arts.as_slice(),
                slack: slack.as_slice(),
                versions: versions.as_slice(),
            };
            for (w, tx) in task_txs.iter().enumerate() {
                let (lo, hi) = shard_bounds(len, jobs, w + 1);
                tx.send(Task {
                    view,
                    lo,
                    hi,
                    moves_done: stats.moves,
                    current_h,
                    best_h,
                })
                .expect("eval worker alive");
            }
            let (lo0, hi0) = shard_bounds(len, jobs, 0);
            let mut best_mv = eval_shard(
                engine,
                partition,
                &tabu,
                &boundary.as_slice()[lo0..hi0],
                &arts,
                &slack,
                &versions,
                stats.moves,
                current_h,
                best_h,
                &mut main_ws,
            );
            // Rendezvous: collect every dispatched result before touching
            // any shared state. The reduction order is irrelevant — the
            // order is strict, so the minimum is unique.
            for _ in 0..task_txs.len() {
                let winner = res_rx.recv().expect("eval worker result");
                if let Some(mv) = winner {
                    if beats(mv.delta, mv.area, mv.to, &best_mv) {
                        best_mv = Some(mv);
                    }
                }
            }
            let Some(mv) = best_mv else {
                break LoopEnd::Converged; // no admissible move at all
            };
            partition.move_area(engine, mv.area, mv.to);
            if is_boundary(engine, partition, mv.area) {
                boundary.insert(mv.area);
            } else {
                boundary.remove(mv.area);
            }
            for &nb in engine.instance().graph().neighbors(mv.area) {
                if is_boundary(engine, partition, nb) {
                    boundary.insert(nb);
                } else {
                    boundary.remove(nb);
                }
            }
            rec.counters().record_max(
                CounterKind::BoundaryAreasPeak,
                boundary.as_slice().len() as u64,
            );
            versions[mv.from as usize] += 1;
            versions[mv.to as usize] += 1;
            for id in [mv.from, mv.to] {
                refresh_region(
                    engine,
                    partition,
                    id,
                    &mut arts,
                    &mut slack,
                    &mut spare,
                    &mut scratch,
                    &mut main_ws.counters,
                );
            }
            stats.moves += 1;
            rec.counters().inc(CounterKind::TabuMovesApplied);
            rec.hists().record(
                HistKind::TabuMoveDelta,
                (mv.delta.abs() * 1e6).round() as u64,
            );
            tabu.forbid(mv.area, mv.from, stats.moves);
            current_h += mv.delta;
            if stats.iterations.is_multiple_of(RESYNC_INTERVAL) {
                rec.span_begin("resync", Some((stats.iterations / RESYNC_INTERVAL) as u64));
                rec.counters().inc(CounterKind::ObjectiveResyncs);
                debug_check_drift(engine, partition, current_h);
                current_h = partition.heterogeneity_with(engine);
                rec.span_end();
            }
            rec.trajectory_point(stats.moves as u64, current_h);
            if current_h < best_h - 1e-9 {
                best_h = current_h;
                best_assignment.copy_from_slice(partition.assignment());
                no_improve = 0;
            } else {
                no_improve += 1;
            }
            if rec.has_live()
                && stats
                    .iterations
                    .is_multiple_of(crate::tabu::LIVE_FLUSH_INTERVAL)
            {
                crate::tabu::flush_live(
                    rec,
                    budget,
                    stats.iterations,
                    current_h,
                    best_h,
                    Some(boundary.as_slice().len() as u64),
                );
            }
        };

        // Tear the pool down before anything else mutates the partition:
        // closing the task channels ends the worker loops, and the joins
        // hand back the per-worker counters.
        drop(task_txs);
        for h in handles {
            let counters = h.join().expect("eval worker panicked");
            rec.merge_counters(&counters);
        }
        end
    })
    .expect("tabu eval pool");

    rec.merge_counters(&main_ws.counters);
    rec.counters()
        .add(CounterKind::ScratchEpochRollovers, scratch.rollovers());

    match outcome {
        LoopEnd::Interrupted(reason) => {
            stats.best = best_h;
            if rec.has_live() {
                crate::tabu::flush_live(rec, budget, stats.iterations, current_h, best_h, None);
            }
            TabuOutcome::Interrupted {
                stats,
                reason,
                state: TabuResume {
                    iterations: stats.iterations,
                    moves: stats.moves,
                    no_improve,
                    initial,
                    current_h,
                    best_h,
                    best_assignment,
                    tabu,
                },
            }
        }
        LoopEnd::Converged => {
            debug_check_drift(engine, partition, current_h);
            if (partition.heterogeneity_with(engine) - best_h).abs() > 1e-9 {
                *partition = Partition::from_assignment(engine, &best_assignment);
            }
            stats.best = best_h;
            TabuOutcome::Converged(stats)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttributeTable;
    use crate::constraint::{Constraint, ConstraintSet};
    use crate::instance::EmpInstance;
    use crate::tabu::{tabu_search, TabuConfig};
    use emp_graph::ContiguityGraph;

    fn lattice_instance(w: usize, h: usize) -> EmpInstance {
        let n = w * h;
        let graph = ContiguityGraph::lattice(w, h);
        let mut attrs = AttributeTable::new(n);
        attrs.push_column("POP", vec![1.0; n]).unwrap();
        attrs
            .push_column("D", (0..n).map(|i| ((i * 7) % 5) as f64).collect())
            .unwrap();
        EmpInstance::new(graph, attrs, "D").unwrap()
    }

    fn quadrant_partition(engine: &ConstraintEngine<'_>, w: usize, h: usize) -> Partition {
        let mut part = Partition::new(w * h);
        let (hw, hh) = (w / 2, h / 2);
        for (qx, qy) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
            let members: Vec<u32> = (0..w * h)
                .filter(|&i| {
                    let (x, y) = (i % w, i / w);
                    (x < hw) == (qx == 0) && (y < hh) == (qy == 0)
                })
                .map(|i| i as u32)
                .collect();
            part.create_region(engine, &members);
        }
        part
    }

    #[test]
    fn parallel_matches_serial_moves_and_objective() {
        let inst = lattice_instance(8, 8);
        let set = ConstraintSet::new().with(Constraint::count(4.0, 40.0).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let serial_cfg = TabuConfig::for_instance(64);
        let mut serial = quadrant_partition(&eng, 8, 8);
        let serial_stats = tabu_search(&eng, &mut serial, &serial_cfg);
        for jobs in [2, 3, 8] {
            let cfg = TabuConfig { jobs, ..serial_cfg };
            let mut par = quadrant_partition(&eng, 8, 8);
            let stats = tabu_search(&eng, &mut par, &cfg);
            assert_eq!(stats.moves, serial_stats.moves, "jobs={jobs}");
            assert_eq!(
                stats.best.to_bits(),
                serial_stats.best.to_bits(),
                "jobs={jobs}"
            );
            assert_eq!(par.assignment(), serial.assignment(), "jobs={jobs}");
        }
    }

    #[test]
    fn shard_bounds_cover_and_partition() {
        for len in [0usize, 1, 7, 64, 1001] {
            for jobs in [2usize, 3, 8] {
                let mut covered = 0;
                for w in 0..jobs {
                    let (lo, hi) = shard_bounds(len, jobs, w);
                    assert!(lo <= hi && hi <= len);
                    covered += hi - lo;
                    if w > 0 {
                        assert_eq!(shard_bounds(len, jobs, w - 1).1, lo);
                    }
                }
                assert_eq!(covered, len);
            }
        }
    }
}
