//! Pluggable local-search objectives.
//!
//! The paper's Eq. 1 heterogeneity is the default objective, but §III notes
//! that "our work can support alternative definitions, such as improving
//! spatial compactness or balancing multiple criteria" because the Tabu
//! phase only needs an objective it can evaluate incrementally. This module
//! makes that concrete: an objective is a weighted sum of *channels*, each a
//! per-area value whose per-region pairwise L1 spread is minimized.
//!
//! * **Heterogeneity** — one channel: the dissimilarity attribute `d_i`
//!   (exactly the paper's `H(P)` up to the pair-counting convention).
//! * **Compactness** — two channels: area centroid `x` and `y`; minimizing
//!   pairwise coordinate spread pulls regions into compact blobs.
//! * **Balanced** — any weighted combination of the above.

use crate::error::EmpError;

/// One objective channel: per-area values plus a weight.
#[derive(Clone, Debug, PartialEq)]
pub struct Channel {
    /// Channel name (reporting only).
    pub name: String,
    /// One value per area; the channel score of a region is the pairwise
    /// `Σ_{i<j} |v_i - v_j|` over its members.
    pub values: Vec<f64>,
    /// Weight in the overall objective.
    pub weight: f64,
}

/// A weighted multi-channel objective.
#[derive(Clone, Debug, PartialEq)]
pub struct ObjectiveSpec {
    channels: Vec<Channel>,
}

impl ObjectiveSpec {
    /// The paper's default: minimize dissimilarity heterogeneity.
    pub fn heterogeneity(dissimilarity: Vec<f64>) -> Self {
        ObjectiveSpec {
            channels: vec![Channel {
                name: "heterogeneity".to_string(),
                values: dissimilarity,
                weight: 1.0,
            }],
        }
    }

    /// Spatial compactness: minimize the pairwise centroid spread.
    pub fn compactness(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self, EmpError> {
        Self::from_channels(vec![
            Channel {
                name: "centroid-x".to_string(),
                values: xs,
                weight: 1.0,
            },
            Channel {
                name: "centroid-y".to_string(),
                values: ys,
                weight: 1.0,
            },
        ])
    }

    /// A custom weighted combination (e.g. heterogeneity + compactness).
    pub fn from_channels(channels: Vec<Channel>) -> Result<Self, EmpError> {
        if channels.is_empty() {
            return Err(EmpError::ConstraintParse {
                message: "objective needs at least one channel".to_string(),
            });
        }
        let len = channels[0].values.len();
        for ch in &channels {
            if ch.values.len() != len {
                return Err(EmpError::ColumnLengthMismatch {
                    name: ch.name.clone(),
                    expected: len,
                    actual: ch.values.len(),
                });
            }
            if !ch.weight.is_finite() || ch.weight < 0.0 {
                return Err(EmpError::InvalidAttributeValue {
                    name: ch.name.clone(),
                    row: 0,
                    value: ch.weight,
                });
            }
            if let Some(row) = ch.values.iter().position(|v| !v.is_finite()) {
                return Err(EmpError::InvalidAttributeValue {
                    name: ch.name.clone(),
                    row,
                    value: ch.values[row],
                });
            }
        }
        Ok(ObjectiveSpec { channels })
    }

    /// The channels.
    #[inline]
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Number of areas the spec covers.
    pub fn len(&self) -> usize {
        self.channels[0].values.len()
    }

    /// Whether the spec covers no areas.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Recomputes the full objective score of a region list from scratch
    /// (test/validation oracle).
    pub fn score(&self, regions: &[Vec<u32>]) -> f64 {
        use crate::heterogeneity::DissimStat;
        self.channels
            .iter()
            .map(|ch| {
                ch.weight
                    * regions
                        .iter()
                        .map(|members| {
                            let vals: Vec<f64> =
                                members.iter().map(|&a| ch.values[a as usize]).collect();
                            DissimStat::from_values(&vals).pairwise()
                        })
                        .sum::<f64>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heterogeneity_single_channel() {
        let o = ObjectiveSpec::heterogeneity(vec![0.0, 1.0, 3.0]);
        assert_eq!(o.channels().len(), 1);
        assert_eq!(o.len(), 3);
        // One region {0,1,2}: |0-1| + |0-3| + |1-3| = 6.
        assert_eq!(o.score(&[vec![0, 1, 2]]), 6.0);
        // Split: {0,1} | {2} = 1.
        assert_eq!(o.score(&[vec![0, 1], vec![2]]), 1.0);
    }

    #[test]
    fn compactness_two_channels() {
        let o = ObjectiveSpec::compactness(vec![0.0, 0.0, 5.0], vec![0.0, 1.0, 0.0]).unwrap();
        assert_eq!(o.channels().len(), 2);
        // Region {0,1}: x spread 0, y spread 1 -> 1.
        // Region {0,2}: x spread 5, y spread 0 -> 5.
        assert_eq!(o.score(&[vec![0, 1]]), 1.0);
        assert_eq!(o.score(&[vec![0, 2]]), 5.0);
    }

    #[test]
    fn weighted_combination() {
        let o = ObjectiveSpec::from_channels(vec![
            Channel {
                name: "a".into(),
                values: vec![0.0, 2.0],
                weight: 10.0,
            },
            Channel {
                name: "b".into(),
                values: vec![0.0, 1.0],
                weight: 1.0,
            },
        ])
        .unwrap();
        assert_eq!(o.score(&[vec![0, 1]]), 21.0);
    }

    #[test]
    fn validation() {
        assert!(ObjectiveSpec::from_channels(vec![]).is_err());
        assert!(ObjectiveSpec::compactness(vec![0.0], vec![0.0, 1.0]).is_err());
        let bad_weight = Channel {
            name: "w".into(),
            values: vec![0.0],
            weight: -1.0,
        };
        assert!(ObjectiveSpec::from_channels(vec![bad_weight]).is_err());
        let nan = Channel {
            name: "n".into(),
            values: vec![f64::NAN],
            weight: 1.0,
        };
        assert!(ObjectiveSpec::from_channels(vec![nan]).is_err());
    }
}
