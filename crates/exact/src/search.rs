//! Exact EMP solving by exhaustive branch-and-bound over connected
//! partitions.
//!
//! The paper demonstrates EMP's intractability by solving a MIP formulation
//! with Gurobi: 33.86 s for 9 areas, ~10 h for 16 areas, and no feasible
//! solution after 110 h for 25 areas. Gurobi is proprietary, so this crate
//! provides an exact solver with the same role: ground truth for tiny
//! instances and a measurable exponential blow-up (`experiments::exact_study`
//! in `emp-bench` reproduces the growth curve).
//!
//! The search picks the lowest-indexed undecided area and branches on
//! (a) leaving it unassigned (`U_0`), or (b) every connected, feasible
//! region containing it drawn from the undecided set — enumerated with the
//! standard fixed-pivot connected-subgraph expansion, pruned by monotonic
//! SUM/COUNT upper bounds. The objective is lexicographic, as in the paper:
//! maximize `p`, then minimize heterogeneity (and prefer fewer unassigned
//! areas among ties).

use emp_core::constraint::{Aggregate, ConstraintSet};
use emp_core::control::{SolveBudget, StopReason};
use emp_core::engine::ConstraintEngine;
use emp_core::error::EmpError;
use emp_core::heterogeneity::DissimStat;
use emp_core::instance::EmpInstance;
use emp_core::solution::Solution;

/// Budget polls are amortized over this many charged nodes: the branch-and-
/// bound charges nodes at a rate of millions per second, so polling every
/// node would spend more time on `Instant::now()` than on search.
const POLL_STRIDE: u64 = 1024;

/// Search limits and knobs.
///
/// The search itself is deterministic by construction — no RNG anywhere:
/// the pivot is always the lowest-indexed undecided area, connected subsets
/// are enumerated in fixed bit order, and ties are broken by the first
/// incumbent found. Two runs with the same instance, constraints, and
/// config produce byte-identical [`ExactReport`]s.
#[derive(Clone, Copy, Debug)]
pub struct ExactConfig {
    /// Abort after this many search nodes (the result is then a lower
    /// bound, flagged in [`ExactReport::complete`]).
    pub max_nodes: u64,
    /// Optimize `p` only: prune branches that cannot *exceed* the incumbent
    /// `p` (instead of only those that cannot reach it) and stop as soon as
    /// the incumbent hits the theoretical `p` upper bound
    /// ([`emp_core::validate::p_upper_bound`]). Much faster; the reported
    /// `p` is still provably optimal, but the unassigned-count and
    /// heterogeneity tie-breaks are no longer guaranteed. This is the mode
    /// the differential oracle uses, where only `p*` matters.
    pub p_only: bool,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            max_nodes: 50_000_000,
            p_only: false,
        }
    }
}

impl ExactConfig {
    /// The differential-oracle preset: `p`-only pruning with a node budget.
    pub fn p_only(max_nodes: u64) -> Self {
        ExactConfig {
            max_nodes,
            p_only: true,
        }
    }
}

/// Exact solver output.
#[derive(Clone, Debug)]
pub struct ExactReport {
    /// The best solution found (optimal when `complete`).
    pub solution: Solution,
    /// Whether the search space was fully explored.
    pub complete: bool,
    /// Search effort: branch nodes expanded plus connected-subset
    /// enumeration steps (the blow-up measure for the MIP study).
    pub nodes: u64,
}

/// Maximum instance size (areas are tracked in a `u64` bitmask).
pub const MAX_AREAS: usize = 64;

struct Ctx<'a, 'b> {
    engine: &'a ConstraintEngine<'b>,
    adjacency_masks: Vec<u64>,
    dissim: &'a [f64],
    count_low: f64,
    /// Monotonic upper bounds: (constraint index, is_count).
    nodes: u64,
    max_nodes: u64,
    budget: &'a SolveBudget,
    /// Set at the first interrupted charge; sticky for the rest of the run.
    stop: Option<StopReason>,
    best_p: usize,
    best_h: f64,
    best_unassigned: usize,
    best_regions: Option<Vec<u64>>,
    /// `p`-only mode: prune `p` ties, stop once `best_p == target_p`.
    p_only: bool,
    /// Theoretical `p` upper bound; reaching it proves optimality.
    target_p: usize,
    /// Set when the incumbent provably has optimal `p` (p-only mode).
    done: bool,
}

/// Solves an EMP instance exactly. Errors on instances larger than
/// [`MAX_AREAS`] or invalid constraints; hard-infeasible constraint sets
/// yield the optimal "everything unassigned" solution with `p = 0`.
pub fn exact_solve(
    instance: &EmpInstance,
    constraints: &ConstraintSet,
    config: &ExactConfig,
) -> Result<ExactReport, EmpError> {
    exact_solve_budgeted(instance, constraints, config, &SolveBudget::unlimited())
        .map(|(report, _)| report)
}

/// [`exact_solve`] under a cooperative [`SolveBudget`]: the search polls the
/// budget every [`POLL_STRIDE`] charged nodes alongside the node-budget
/// check, so a deadline or cancellation interrupts even a blown-up search.
/// The returned report always carries the best incumbent found so far (at
/// worst the always-valid "everything unassigned" baseline); the
/// [`StopReason`] is [`Completed`](StopReason::Completed) iff
/// [`ExactReport::complete`].
pub fn exact_solve_budgeted(
    instance: &EmpInstance,
    constraints: &ConstraintSet,
    config: &ExactConfig,
    budget: &SolveBudget,
) -> Result<(ExactReport, StopReason), EmpError> {
    let n = instance.len();
    if n > MAX_AREAS {
        return Err(EmpError::SizeMismatch {
            graph: n,
            attrs: MAX_AREAS,
        });
    }
    let engine = ConstraintEngine::compile(instance, constraints)?;
    let adjacency_masks: Vec<u64> = (0..n as u32)
        .map(|v| {
            instance
                .graph()
                .neighbors(v)
                .iter()
                .fold(0u64, |m, &w| m | (1u64 << w))
        })
        .collect();
    // Per-region COUNT lower bound refines the p upper bound.
    let count_low = engine
        .indices_of(Aggregate::Count)
        .iter()
        .map(|&ci| engine.constraints()[ci].low)
        .fold(1.0f64, f64::max);

    let target_p = if config.p_only {
        emp_core::validate::p_upper_bound(instance, constraints)?
    } else {
        usize::MAX
    };
    let mut ctx = Ctx {
        engine: &engine,
        adjacency_masks,
        dissim: instance.dissimilarity(),
        count_low,
        nodes: 0,
        max_nodes: config.max_nodes,
        budget,
        stop: None,
        best_p: 0,
        best_h: f64::INFINITY,
        best_unassigned: usize::MAX,
        best_regions: None,
        p_only: config.p_only,
        target_p,
        done: false,
    };
    // Baseline incumbent: everything unassigned (always valid in EMP).
    ctx.consider(&[], n);

    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut regions: Vec<u64> = Vec::new();
    let complete = search(&mut ctx, full, &mut regions, 0.0, 0);

    let best_regions = ctx.best_regions.clone().unwrap_or_default();
    let mut region_lists: Vec<Vec<u32>> =
        best_regions.iter().map(|&mask| mask_to_vec(mask)).collect();
    region_lists.sort_by_key(|m| m[0]);
    let mut assignment = vec![None; n];
    for (ri, members) in region_lists.iter().enumerate() {
        for &a in members {
            assignment[a as usize] = Some(ri as u32);
        }
    }
    let unassigned: Vec<u32> = (0..n as u32)
        .filter(|&a| assignment[a as usize].is_none())
        .collect();
    let heterogeneity =
        emp_core::heterogeneity::total_heterogeneity(instance.dissimilarity(), &region_lists);
    let stop_reason = if complete {
        StopReason::Completed
    } else {
        ctx.stop.unwrap_or(StopReason::NodeBudget)
    };
    Ok((
        ExactReport {
            solution: Solution {
                regions: region_lists,
                assignment,
                unassigned,
                heterogeneity,
            },
            complete,
            nodes: ctx.nodes,
        },
        stop_reason,
    ))
}

fn mask_to_vec(mask: u64) -> Vec<u32> {
    let mut v = Vec::with_capacity(mask.count_ones() as usize);
    let mut m = mask;
    while m != 0 {
        let b = m.trailing_zeros();
        v.push(b);
        m &= m - 1;
    }
    v
}

impl Ctx<'_, '_> {
    /// Charges one node against the node budget and (every [`POLL_STRIDE`]
    /// nodes) the cooperative budget. Answers `false` when the search must
    /// stop; the stop reason is latched in `self.stop`.
    fn charge(&mut self) -> bool {
        self.nodes += 1;
        if self.nodes > self.max_nodes {
            self.stop.get_or_insert(StopReason::NodeBudget);
            return false;
        }
        if self.nodes.is_multiple_of(POLL_STRIDE) {
            if let Some(reason) = self.budget.poll() {
                self.stop.get_or_insert(reason);
                return false;
            }
        }
        self.stop.is_none()
    }

    fn consider(&mut self, regions: &[u64], unassigned: usize) {
        let p = regions.len();
        let h: f64 = regions.iter().map(|&m| self.region_h(m)).sum();
        let better = (p, -(unassigned as i64), -h)
            .partial_cmp(&(self.best_p, -(self.best_unassigned as i64), -self.best_h))
            .is_some_and(|o| o == std::cmp::Ordering::Greater);
        if self.best_regions.is_none() || better {
            self.best_p = p;
            self.best_h = h;
            self.best_unassigned = unassigned;
            self.best_regions = Some(regions.to_vec());
        }
        if self.p_only && self.best_p >= self.target_p {
            // The incumbent meets the theoretical upper bound: its `p` is
            // provably optimal, no further search needed.
            self.done = true;
        }
    }

    fn region_h(&self, mask: u64) -> f64 {
        let mut stat = DissimStat::new();
        for a in mask_to_vec(mask) {
            stat.insert(self.dissim[a as usize]);
        }
        stat.pairwise()
    }

    /// Whether the region described by `mask` satisfies every constraint.
    fn region_feasible(&self, mask: u64) -> bool {
        let members = mask_to_vec(mask);
        let agg = self.engine.compute_fresh(&members);
        self.engine.satisfies_all(&agg)
    }

    /// Whether growing `mask` further could still satisfy monotonic upper
    /// bounds (SUM/COUNT only increase).
    fn upper_bounds_ok(&self, mask: u64) -> bool {
        let members = mask_to_vec(mask);
        let agg = self.engine.compute_fresh(&members);
        for (ci, c) in self.engine.constraints().iter().enumerate() {
            if matches!(c.aggregate, Aggregate::Sum | Aggregate::Count)
                && self.engine.value(&agg, ci) > c.high
            {
                return false;
            }
        }
        true
    }
}

/// Returns `false` when the node budget ran out (result may be suboptimal).
fn search(
    ctx: &mut Ctx<'_, '_>,
    remaining: u64,
    regions: &mut Vec<u64>,
    _h: f64,
    _depth: usize,
) -> bool {
    if ctx.done {
        return true;
    }
    if !ctx.charge() {
        return false;
    }
    if remaining == 0 {
        ctx.consider(regions, 0);
        return true;
    }
    // Bound: current p plus the most regions the remaining areas could form.
    let remaining_count = remaining.count_ones() as usize;
    let max_extra = (remaining_count as f64 / ctx.count_low).floor() as usize;
    let reachable = regions.len() + max_extra;
    // In p-only mode ties ARE pruned (they cannot improve p); in the full
    // lexicographic mode they are kept, since a tie can still win on
    // unassigned count or heterogeneity.
    let bound_cut = if ctx.p_only {
        reachable <= ctx.best_p
    } else {
        reachable < ctx.best_p
    };
    if bound_cut {
        ctx.consider(regions, remaining_count);
        return true;
    }

    let pivot = remaining.trailing_zeros() as usize;
    let pivot_bit = 1u64 << pivot;
    let mut complete = true;

    // Branch (a): pivot goes to U_0.
    {
        let rest = remaining & !pivot_bit;
        // Record the partial state as a candidate (all remaining areas could
        // be unassigned).
        ctx.consider(regions, remaining_count);
        complete &= search(ctx, rest, regions, _h, _depth + 1);
    }

    // Branch (b): every connected feasible region containing the pivot.
    // Enumeration charges the node budget too: on loosely constrained
    // instances the subset count is exponential in `n`, and an uncharged
    // enumeration would run unbounded before the first search node.
    let mut subsets: Vec<u64> = Vec::new();
    complete &= enumerate_connected(
        ctx,
        pivot_bit,
        pivot_bit,
        remaining & !pivot_bit,
        &mut subsets,
    );
    for mask in subsets {
        if ctx.done {
            break;
        }
        if ctx.region_feasible(mask) {
            regions.push(mask);
            complete &= search(ctx, remaining & !mask, regions, _h, _depth + 1);
            regions.pop();
            if ctx.stop.is_some() {
                return false;
            }
        }
    }
    complete
}

/// Enumerates all connected subsets of `current ∪ (subsets of candidates)`
/// that contain the pivot, using the fixed-pivot expansion (each subset
/// generated exactly once). Every expansion step counts against the node
/// budget; returns `false` when the budget ran out mid-enumeration (the
/// collected prefix is still searched, but the result is incomplete).
#[allow(clippy::only_used_in_recursion)]
fn enumerate_connected(
    ctx: &mut Ctx<'_, '_>,
    current: u64,
    _pivot_bit: u64,
    available: u64,
    out: &mut Vec<u64>,
) -> bool {
    if !ctx.charge() {
        return false;
    }
    out.push(current);
    // Prune: if monotonic upper bounds are already violated, no superset of
    // `current` can be feasible.
    if !ctx.upper_bounds_ok(current) {
        out.pop();
        return true;
    }
    // Frontier of `current` within `available`.
    let mut frontier = 0u64;
    let mut cm = current;
    while cm != 0 {
        let v = cm.trailing_zeros() as usize;
        frontier |= ctx.adjacency_masks[v];
        cm &= cm - 1;
    }
    frontier &= available;
    // Standard duplicate-free expansion: pick frontier vertices in order;
    // once a vertex is skipped it is banned for the whole subtree.
    let mut banned = 0u64;
    let mut f = frontier;
    let mut complete = true;
    while f != 0 {
        let v = f.trailing_zeros() as usize;
        let v_bit = 1u64 << v;
        f &= f - 1;
        complete &= enumerate_connected(
            ctx,
            current | v_bit,
            _pivot_bit,
            available & !banned & !v_bit,
            out,
        );
        if !complete {
            break;
        }
        banned |= v_bit;
    }
    complete
}

#[cfg(test)]
mod tests {
    use super::*;
    use emp_core::attr::AttributeTable;
    use emp_core::constraint::Constraint;
    use emp_core::validate::validate_solution;
    use emp_graph::ContiguityGraph;

    fn path_instance(values: &[f64]) -> EmpInstance {
        let n = values.len();
        let graph = ContiguityGraph::lattice(n, 1);
        let mut attrs = AttributeTable::new(n);
        attrs.push_column("POP", values.to_vec()).unwrap();
        EmpInstance::new(graph, attrs, "POP").unwrap()
    }

    #[test]
    fn trivial_no_constraints_gives_singletons() {
        let inst = path_instance(&[1.0, 2.0, 3.0]);
        let report = exact_solve(&inst, &ConstraintSet::new(), &ExactConfig::default()).unwrap();
        assert!(report.complete);
        assert_eq!(report.solution.p(), 3);
        assert!(report.solution.unassigned.is_empty());
    }

    #[test]
    fn sum_threshold_optimal_p() {
        // Path [3,3,3,3], SUM >= 6: optimal p = 2 ({0,1}, {2,3}).
        let inst = path_instance(&[3.0; 4]);
        let set = ConstraintSet::new().with(Constraint::sum("POP", 6.0, f64::INFINITY).unwrap());
        let report = exact_solve(&inst, &set, &ExactConfig::default()).unwrap();
        assert!(report.complete);
        assert_eq!(report.solution.p(), 2);
        assert!(report.solution.unassigned.is_empty());
        validate_solution(&inst, &set, &report.solution).unwrap();
    }

    #[test]
    fn prefers_unassigned_over_infeasible_region() {
        // [10, 1, 10] with SUM in [10, 11]: the optimum is {0}, {2} as
        // regions and area 1 unassigned (p = 2).
        let inst = path_instance(&[10.0, 1.0, 10.0]);
        let set = ConstraintSet::new().with(Constraint::sum("POP", 10.0, 11.0).unwrap());
        let report = exact_solve(&inst, &set, &ExactConfig::default()).unwrap();
        assert!(report.complete);
        assert_eq!(report.solution.p(), 2);
        assert_eq!(report.solution.unassigned, vec![1]);
        validate_solution(&inst, &set, &report.solution).unwrap();
    }

    #[test]
    fn heterogeneity_breaks_p_ties() {
        // 4-path dissim [0, 0, 10, 10]; COUNT = 2 exactly: p = 2 both ways,
        // but {0,1},{2,3} has H = 0.
        let graph = ContiguityGraph::lattice(4, 1);
        let mut attrs = AttributeTable::new(4);
        attrs.push_column("POP", vec![1.0; 4]).unwrap();
        attrs.push_column("D", vec![0.0, 0.0, 10.0, 10.0]).unwrap();
        let inst = EmpInstance::new(graph, attrs, "D").unwrap();
        let set = ConstraintSet::new().with(Constraint::count(2.0, 2.0).unwrap());
        let report = exact_solve(&inst, &set, &ExactConfig::default()).unwrap();
        assert!(report.complete);
        assert_eq!(report.solution.p(), 2);
        assert_eq!(report.solution.heterogeneity, 0.0);
        assert_eq!(report.solution.regions, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn respects_min_max_avg() {
        // Lattice 2x2, s = [2, 8, 4, 6]; constraints force pairing low/high:
        // AVG in [4.5, 5.5] and COUNT <= 2.
        let graph = ContiguityGraph::lattice(2, 2);
        let mut attrs = AttributeTable::new(4);
        attrs.push_column("s", vec![2.0, 8.0, 4.0, 6.0]).unwrap();
        let inst = EmpInstance::new(graph, attrs, "s").unwrap();
        let set = ConstraintSet::new()
            .with(Constraint::avg("s", 4.5, 5.5).unwrap())
            .with(Constraint::count(1.0, 2.0).unwrap());
        let report = exact_solve(&inst, &set, &ExactConfig::default()).unwrap();
        assert!(report.complete);
        // {0,1} avg 5 and {2,3} avg 5: p = 2, everything assigned.
        assert_eq!(report.solution.p(), 2);
        assert!(report.solution.unassigned.is_empty());
        validate_solution(&inst, &set, &report.solution).unwrap();
    }

    #[test]
    fn infeasible_everything_unassigned() {
        let inst = path_instance(&[1.0, 1.0]);
        let set = ConstraintSet::new().with(Constraint::sum("POP", 100.0, f64::INFINITY).unwrap());
        let report = exact_solve(&inst, &set, &ExactConfig::default()).unwrap();
        assert!(report.complete);
        assert_eq!(report.solution.p(), 0);
        assert_eq!(report.solution.unassigned.len(), 2);
    }

    #[test]
    fn p_only_matches_full_search_p() {
        // Same optimal p as the full lexicographic search, far fewer nodes.
        let inst = path_instance(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]);
        let set = ConstraintSet::new().with(Constraint::sum("POP", 7.0, f64::INFINITY).unwrap());
        let full = exact_solve(&inst, &set, &ExactConfig::default()).unwrap();
        let fast = exact_solve(&inst, &set, &ExactConfig::p_only(50_000_000)).unwrap();
        assert!(full.complete && fast.complete);
        assert_eq!(fast.solution.p(), full.solution.p());
        assert!(fast.nodes <= full.nodes, "{} > {}", fast.nodes, full.nodes);
        validate_solution(&inst, &set, &fast.solution).unwrap();
    }

    #[test]
    fn p_only_stops_at_upper_bound() {
        // Uniform path, SUM >= 2 with unit values: p* = floor(n/2) equals
        // the p upper bound, so the early stop fires almost immediately.
        let inst = path_instance(&[1.0; 10]);
        let set = ConstraintSet::new().with(Constraint::sum("POP", 2.0, f64::INFINITY).unwrap());
        let full = exact_solve(&inst, &set, &ExactConfig::default()).unwrap();
        let fast = exact_solve(&inst, &set, &ExactConfig::p_only(50_000_000)).unwrap();
        assert!(fast.complete);
        assert_eq!(fast.solution.p(), 5);
        assert_eq!(fast.solution.p(), full.solution.p());
        assert!(fast.nodes < full.nodes, "{} vs {}", fast.nodes, full.nodes);
    }

    #[test]
    fn p_only_handles_infeasible() {
        let inst = path_instance(&[1.0, 1.0]);
        let set = ConstraintSet::new().with(Constraint::sum("POP", 100.0, f64::INFINITY).unwrap());
        let report = exact_solve(&inst, &set, &ExactConfig::p_only(1000)).unwrap();
        assert!(report.complete);
        assert_eq!(report.solution.p(), 0);
    }

    #[test]
    fn deterministic_across_runs() {
        // No RNG anywhere in the search: byte-identical reports.
        let inst = path_instance(&[2.0, 7.0, 1.0, 8.0, 2.0, 8.0]);
        let set = ConstraintSet::new()
            .with(Constraint::sum("POP", 5.0, f64::INFINITY).unwrap())
            .with(Constraint::count(1.0, 3.0).unwrap());
        let a = exact_solve(&inst, &set, &ExactConfig::default()).unwrap();
        let b = exact_solve(&inst, &set, &ExactConfig::default()).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn node_budget_truncates_search() {
        let inst = path_instance(&[1.0; 12]);
        let cfg = ExactConfig {
            max_nodes: 10,
            ..ExactConfig::default()
        };
        let report = exact_solve(&inst, &ConstraintSet::new(), &cfg).unwrap();
        assert!(!report.complete);
        assert!(report.nodes >= 10);
    }

    #[test]
    fn budget_cancellation_interrupts_search() {
        use emp_core::control::CancelToken;
        // Pre-cancelled token: the search stops at its first amortized poll
        // (POLL_STRIDE nodes in) with a valid incumbent.
        let inst = path_instance(&[1.0; 16]);
        let token = CancelToken::new();
        token.cancel();
        let budget = SolveBudget::unlimited().with_cancel(token);
        let (report, reason) = exact_solve_budgeted(
            &inst,
            &ConstraintSet::new(),
            &ExactConfig::default(),
            &budget,
        )
        .unwrap();
        assert!(!report.complete);
        assert_eq!(reason, StopReason::Cancelled);
        assert!(report.nodes <= 2 * POLL_STRIDE, "{}", report.nodes);
        validate_solution(&inst, &ConstraintSet::new(), &report.solution).unwrap();
    }

    #[test]
    fn budget_poll_limit_is_deterministic() {
        let inst = path_instance(&[1.0; 16]);
        let run = || {
            exact_solve_budgeted(
                &inst,
                &ConstraintSet::new(),
                &ExactConfig::default(),
                &SolveBudget::poll_limit(2),
            )
            .unwrap()
        };
        let (a, ra) = run();
        let (b, rb) = run();
        assert!(!a.complete);
        assert_eq!(ra, StopReason::IterationBudget);
        assert_eq!(ra, rb);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(format!("{:?}", a.solution), format!("{:?}", b.solution));
    }

    #[test]
    fn node_budget_reports_stop_reason() {
        let inst = path_instance(&[1.0; 12]);
        let cfg = ExactConfig {
            max_nodes: 10,
            ..ExactConfig::default()
        };
        let (report, reason) = exact_solve_budgeted(
            &inst,
            &ConstraintSet::new(),
            &cfg,
            &SolveBudget::unlimited(),
        )
        .unwrap();
        assert!(!report.complete);
        assert_eq!(reason, StopReason::NodeBudget);
    }

    #[test]
    fn completed_run_reports_completed() {
        let inst = path_instance(&[3.0; 4]);
        let set = ConstraintSet::new().with(Constraint::sum("POP", 6.0, f64::INFINITY).unwrap());
        let (report, reason) = exact_solve_budgeted(
            &inst,
            &set,
            &ExactConfig::default(),
            &SolveBudget::deadline_ms(60_000),
        )
        .unwrap();
        assert!(report.complete);
        assert_eq!(reason, StopReason::Completed);
        assert_eq!(report.solution.p(), 2);
    }

    #[test]
    fn rejects_oversized_instances() {
        let graph = ContiguityGraph::lattice(9, 9);
        let mut attrs = AttributeTable::new(81);
        attrs.push_column("POP", vec![1.0; 81]).unwrap();
        let inst = EmpInstance::new(graph, attrs, "POP").unwrap();
        assert!(exact_solve(&inst, &ConstraintSet::new(), &ExactConfig::default()).is_err());
    }

    #[test]
    fn nodes_grow_with_instance_size() {
        // The paper's MIP blow-up, in miniature: nodes explode from 6 to 9
        // to 12 areas.
        let mut counts = Vec::new();
        for n in [4usize, 6, 8] {
            let inst = path_instance(&vec![1.0; n]);
            let set =
                ConstraintSet::new().with(Constraint::sum("POP", 2.0, f64::INFINITY).unwrap());
            let report = exact_solve(&inst, &set, &ExactConfig::default()).unwrap();
            assert!(report.complete);
            counts.push(report.nodes);
        }
        assert!(counts[0] < counts[1] && counts[1] < counts[2], "{counts:?}");
    }
}
