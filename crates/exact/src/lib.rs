//! # emp-exact — exact EMP solving for tiny instances
//!
//! Stands in for the paper's Gurobi MIP study (§I): an exact branch-and-
//! bound over connected partitions that yields ground-truth optimal `p`
//! (and heterogeneity) for small instances, plus a node counter exposing
//! the exponential blow-up the paper demonstrates (9 areas: 33.86 s,
//! 16 areas: ~10 h, 25 areas: >110 h with no solution).
//!
//! ```
//! use emp_exact::{exact_solve, ExactConfig};
//! use emp_core::prelude::*;
//! use emp_graph::ContiguityGraph;
//!
//! let graph = ContiguityGraph::lattice(4, 1);
//! let mut attrs = AttributeTable::new(4);
//! attrs.push_column("POP", vec![3.0; 4]).unwrap();
//! let inst = EmpInstance::new(graph, attrs, "POP").unwrap();
//! let constraints = parse_constraints("SUM(POP) >= 6").unwrap();
//! let report = exact_solve(&inst, &constraints, &ExactConfig::default()).unwrap();
//! assert!(report.complete);
//! assert_eq!(report.solution.p(), 2); // provably optimal
//! ```

#![warn(missing_docs)]

pub mod search;

pub use search::{exact_solve, exact_solve_budgeted, ExactConfig, ExactReport, MAX_AREAS};
