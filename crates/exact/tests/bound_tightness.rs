//! Tightness of the analytic `p` upper bound: across seeded instances and
//! constraint combinations, `emp_core::validate::p_upper_bound` must never
//! fall below the exact optimum `p*` — otherwise FaCT would prematurely
//! stop growing regions and the `p_only` exact mode would "prove"
//! optimality of a suboptimal incumbent.
//!
//! The exact searches here run with `p_only: false`, so they never consult
//! `p_upper_bound` themselves: the two sides of each comparison are fully
//! independent. Only completed searches count.

use emp_core::attr::AttributeTable;
use emp_core::constraint::{Constraint, ConstraintSet};
use emp_core::instance::EmpInstance;
use emp_core::validate::p_upper_bound;
use emp_exact::{exact_solve, ExactConfig};
use emp_graph::ContiguityGraph;

/// SplitMix64 — the same seeded stream the oracle generator uses, inlined
/// so this test depends only on the crates under test.
fn mix(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn uniform(seed: &mut u64, lo: f64, hi: f64) -> f64 {
    lo + (mix(seed) as f64 / u64::MAX as f64) * (hi - lo)
}

/// Seeded small instance: a `w × h` lattice (w·h ≤ 16 so the full exact
/// search completes fast) with two random attribute columns.
fn build_instance(seed: &mut u64) -> EmpInstance {
    let w = 2 + (mix(seed) % 3) as usize; // 2..=4
    let h = 2 + (mix(seed) % 3) as usize;
    let n = w * h;
    let graph = ContiguityGraph::lattice(w, h);
    let mut attrs = AttributeTable::new(n);
    let pop: Vec<f64> = (0..n).map(|_| uniform(seed, 1.0, 100.0)).collect();
    let inc: Vec<f64> = (0..n).map(|_| uniform(seed, 0.0, 10.0)).collect();
    attrs.push_column("POP", pop).unwrap();
    attrs.push_column("INC", inc).unwrap();
    EmpInstance::new(graph, attrs, "INC").unwrap()
}

/// Random constraint combo spanning every aggregate the bound reasons
/// about. Bounds are drawn wide enough that most instances stay feasible
/// but tight enough that the per-constraint bound terms all activate.
fn build_constraints(seed: &mut u64) -> ConstraintSet {
    let mut set = ConstraintSet::new();
    let kinds = mix(seed);
    if kinds & 1 != 0 {
        set.push(Constraint::sum("POP", uniform(seed, 50.0, 250.0), f64::INFINITY).unwrap());
    }
    if kinds & 2 != 0 {
        set.push(Constraint::count(uniform(seed, 1.0, 4.0).floor(), 16.0).unwrap());
    }
    if kinds & 4 != 0 {
        set.push(Constraint::min("INC", f64::NEG_INFINITY, uniform(seed, 2.0, 10.0)).unwrap());
    }
    if kinds & 8 != 0 {
        set.push(Constraint::max("INC", uniform(seed, 0.0, 8.0), f64::INFINITY).unwrap());
    }
    if kinds & 16 != 0 {
        set.push(Constraint::avg("INC", 0.0, uniform(seed, 4.0, 12.0)).unwrap());
    }
    set
}

#[test]
fn p_upper_bound_never_undercuts_exact_optimum() {
    let mut compared = 0usize;
    for case in 0..120u64 {
        let mut seed = case.wrapping_mul(0x5851_F42D_4C95_7F2D).wrapping_add(1);
        let instance = build_instance(&mut seed);
        let constraints = build_constraints(&mut seed);

        let bound = p_upper_bound(&instance, &constraints).expect("bound must compile");
        let config = ExactConfig {
            max_nodes: 5_000_000,
            p_only: false,
        };
        let report = exact_solve(&instance, &constraints, &config).expect("exact must run");
        if !report.complete {
            continue;
        }
        let p_star = report.solution.regions.len();
        assert!(
            bound >= p_star,
            "case {case}: p_upper_bound = {bound} < exact p* = {p_star} \
             (n = {}, constraints = {:?})",
            instance.len(),
            constraints,
        );
        compared += 1;
    }
    // The sweep must actually exercise the comparison, not skip everything
    // via incomplete searches.
    assert!(compared >= 100, "only {compared}/120 searches completed");
}

#[test]
fn p_only_mode_agrees_with_full_search_on_p() {
    // The p_only preset consults p_upper_bound for its early stop; if the
    // bound were ever below p*, this mode would return a smaller p than the
    // bound-free full search. Checking the two agree ties the bound's
    // soundness to the solver that relies on it.
    let mut compared = 0usize;
    for case in 0..60u64 {
        let mut seed = case.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(11);
        let instance = build_instance(&mut seed);
        let constraints = build_constraints(&mut seed);

        let full = exact_solve(
            &instance,
            &constraints,
            &ExactConfig {
                max_nodes: 5_000_000,
                p_only: false,
            },
        )
        .expect("exact must run");
        let fast = exact_solve(&instance, &constraints, &ExactConfig::p_only(5_000_000))
            .expect("exact must run");
        if !full.complete || !fast.complete {
            continue;
        }
        assert_eq!(
            full.solution.regions.len(),
            fast.solution.regions.len(),
            "case {case}: p_only found a different p than the full search"
        );
        compared += 1;
    }
    assert!(compared >= 50, "only {compared}/60 searches completed");
}
