//! Cross-crate integration tests: dataset generation → contiguity →
//! constraints → FaCT → validation, plus baseline and exact-solver
//! cross-checks.

use emp::prelude::*;
use emp_core::constraint::{Constraint, ConstraintSet};
use emp_core::FactConfig;

fn default_query() -> ConstraintSet {
    parse_constraints(
        "MIN(POP16UP) <= 3000 AND AVG(EMPLOYED) IN [1500, 3500] AND SUM(TOTALPOP) >= 20k",
    )
    .expect("valid query")
}

#[test]
fn end_to_end_default_query_on_synthetic_dataset() {
    let dataset = emp::data::build_sized("it-default", 500);
    let instance = dataset.to_instance().unwrap();
    let query = default_query();
    let report = solve(&instance, &query, &FactConfig::seeded(1)).unwrap();
    assert!(report.p() > 10, "p = {}", report.p());
    validate_solution(&instance, &query, &report.solution).unwrap();
}

#[test]
fn all_constraint_families_together() {
    let dataset = emp::data::build_sized("it-families", 400);
    let instance = dataset.to_instance().unwrap();
    let query = ConstraintSet::new()
        .with(Constraint::min("POP16UP", f64::NEG_INFINITY, 3500.0).unwrap())
        .with(Constraint::max("EMPLOYED", 800.0, f64::INFINITY).unwrap())
        .with(Constraint::avg("EMPLOYED", 1200.0, 3800.0).unwrap())
        .with(Constraint::sum("TOTALPOP", 15_000.0, 200_000.0).unwrap())
        .with(Constraint::count(2.0, 40.0).unwrap());
    let report = solve(&instance, &query, &FactConfig::seeded(2)).unwrap();
    assert!(report.p() >= 1);
    validate_solution(&instance, &query, &report.solution).unwrap();
}

#[test]
fn every_single_constraint_subset_is_handled() {
    // §V-D: FaCT must handle any subset of constraint types.
    let dataset = emp::data::build_sized("it-subsets", 200);
    let instance = dataset.to_instance().unwrap();
    let all: Vec<Constraint> = vec![
        Constraint::min("POP16UP", f64::NEG_INFINITY, 4000.0).unwrap(),
        Constraint::max("EMPLOYED", 1000.0, f64::INFINITY).unwrap(),
        Constraint::avg("EMPLOYED", 1000.0, 4000.0).unwrap(),
        Constraint::sum("TOTALPOP", 10_000.0, f64::INFINITY).unwrap(),
        Constraint::count(1.0, 50.0).unwrap(),
    ];
    for mask in 0u32..32 {
        let subset: Vec<Constraint> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, c)| c.clone())
            .collect();
        let query = ConstraintSet::from_constraints(subset);
        let report = solve(&instance, &query, &FactConfig::seeded(mask as u64))
            .unwrap_or_else(|e| panic!("mask {mask:05b}: {e}"));
        validate_solution(&instance, &query, &report.solution)
            .unwrap_or_else(|p| panic!("mask {mask:05b}: {p:?}"));
    }
}

#[test]
fn fact_beats_or_matches_mp_expressiveness() {
    // On the shared single-SUM query, both produce valid solutions with
    // comparable p.
    let dataset = emp::data::build_sized("it-mp", 400);
    let instance = dataset.to_instance().unwrap();
    let threshold = 25_000.0;

    let mp = solve_mp(&instance, "TOTALPOP", threshold, &MpConfig::seeded(3)).unwrap();
    let query =
        ConstraintSet::new().with(Constraint::sum("TOTALPOP", threshold, f64::INFINITY).unwrap());
    let fact = solve(&instance, &query, &FactConfig::seeded(3)).unwrap();

    validate_solution(&instance, &query, &mp.solution).unwrap();
    validate_solution(&instance, &query, &fact.solution).unwrap();
    let (a, b) = (mp.p() as f64, fact.p() as f64);
    assert!(
        (a - b).abs() <= 0.35 * a.max(b),
        "MP p = {a}, FaCT p = {b} — expected comparable values"
    );
}

#[test]
fn exact_solver_confirms_fact_near_optimality() {
    let dataset = emp::data::build_sized("it-exact", 12);
    let instance = dataset.to_instance().unwrap();
    let total: f64 = instance.attributes().sum(0);
    let query =
        ConstraintSet::new().with(Constraint::sum("TOTALPOP", total / 4.0, f64::INFINITY).unwrap());

    let exact = exact_solve(&instance, &query, &ExactConfig::default()).unwrap();
    assert!(exact.complete);
    let fact = solve(&instance, &query, &FactConfig::seeded(4)).unwrap();
    assert!(
        fact.p() <= exact.solution.p(),
        "heuristic cannot beat optimum"
    );
    assert!(
        fact.p() + 1 >= exact.solution.p(),
        "FaCT p = {} far from optimal {}",
        fact.p(),
        exact.solution.p()
    );
}

#[test]
fn geojson_pipeline_to_solution() {
    // Dataset -> GeoJSON -> reload -> solve: the I/O path used by GIS users.
    let dataset = emp::data::build_sized("it-geojson", 150);
    let text = dataset.to_geojson();
    let reloaded = Dataset::from_geojson("reloaded", &text).unwrap();
    assert_eq!(reloaded.graph, dataset.graph);
    let instance = reloaded.to_instance().unwrap();
    let query = default_query();
    let report = solve(&instance, &query, &FactConfig::seeded(5)).unwrap();
    validate_solution(&instance, &query, &report.solution).unwrap();
}

#[test]
fn multi_component_city_is_partitioned_per_component() {
    let spec = emp::data::TessellationSpec {
        n: 240,
        row_width: 16,
        islands: 3,
        jitter: 0.15,
        seed: 6,
    };
    let dataset = Dataset::generate("it-islands", &spec);
    assert_eq!(emp::graph::connected_components(&dataset.graph).count(), 3);
    let instance = dataset.to_instance().unwrap();
    let query =
        ConstraintSet::new().with(Constraint::sum("TOTALPOP", 20_000.0, f64::INFINITY).unwrap());
    let report = solve(&instance, &query, &FactConfig::seeded(6)).unwrap();
    assert!(
        report.p() >= 3,
        "each island should host regions, p = {}",
        report.p()
    );
    validate_solution(&instance, &query, &report.solution).unwrap();
}

#[test]
fn infeasible_queries_are_rejected_with_reasons() {
    let dataset = emp::data::build_sized("it-infeasible", 100);
    let instance = dataset.to_instance().unwrap();
    let query = ConstraintSet::new().with(Constraint::min("POP16UP", 1e9, f64::INFINITY).unwrap());
    match solve(&instance, &query, &FactConfig::default()) {
        Err(emp::core::EmpError::Infeasible { reasons }) => {
            assert!(reasons.iter().any(|r| r.contains("MIN")));
        }
        other => panic!("expected infeasibility, got {other:?}"),
    }
}

#[test]
fn paper_defaults_scale_shape_holds() {
    // p decreases as the SUM lower bound grows (Table IV trend), on a
    // mid-size dataset.
    let dataset = emp::data::build_sized("it-shape", 600);
    let instance = dataset.to_instance().unwrap();
    let mut last_p = usize::MAX;
    for threshold in [5_000.0, 20_000.0, 80_000.0] {
        let query = ConstraintSet::new()
            .with(Constraint::sum("TOTALPOP", threshold, f64::INFINITY).unwrap());
        let report = solve(&instance, &query, &FactConfig::seeded(7)).unwrap();
        assert!(report.p() <= last_p, "p should fall as threshold rises");
        last_p = report.p();
    }
}

#[test]
fn p_upper_bound_is_respected_end_to_end() {
    let dataset = emp::data::build_sized("it-bound", 300);
    let instance = dataset.to_instance().unwrap();
    let query = default_query();
    let bound = p_upper_bound(&instance, &query).unwrap();
    let report = solve(&instance, &query, &FactConfig::seeded(8)).unwrap();
    assert!(
        report.p() <= bound,
        "p = {} exceeds bound {bound}",
        report.p()
    );
}

#[test]
fn wkt_and_geojson_agree_on_geometry() {
    use emp::geo::wkt::{parse_wkt, polygon_to_wkt, WktGeometry};
    let dataset = emp::data::build_sized("it-wkt", 40);
    for area in &dataset.areas {
        for poly in area.polygons() {
            let wkt = polygon_to_wkt(poly);
            match parse_wkt(&wkt).unwrap() {
                WktGeometry::Polygon(back) => {
                    assert!((back.area() - poly.area()).abs() < 1e-9);
                }
                other => panic!("unexpected: {other:?}"),
            }
        }
    }
}
