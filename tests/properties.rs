//! Property-based tests over the core invariants (proptest).

use emp_core::constraint::{Aggregate, Constraint, ConstraintSet};
use emp_core::heterogeneity::DissimStat;
use emp_core::prelude::*;
use emp_core::value::Multiset;
use emp_core::FactConfig;
use emp_graph::ContiguityGraph;
use proptest::prelude::*;

/// Brute-force pairwise |d_i - d_j| oracle.
fn brute_pairwise(values: &[f64]) -> f64 {
    let mut acc = 0.0;
    for i in 0..values.len() {
        for j in (i + 1)..values.len() {
            acc += (values[i] - values[j]).abs();
        }
    }
    acc
}

/// Builds a lattice instance from generated attribute values.
fn instance_from(w: usize, h: usize, pop: Vec<f64>, emp: Vec<f64>) -> EmpInstance {
    let graph = ContiguityGraph::lattice(w, h);
    let mut attrs = AttributeTable::new(w * h);
    attrs.push_column("POP", pop).unwrap();
    attrs.push_column("EMP", emp).unwrap();
    EmpInstance::new(graph, attrs, "POP").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every FaCT solution on a random instance with a random constraint
    /// subset is a valid EMP solution (disjoint, contiguous, feasible).
    #[test]
    fn fact_solutions_are_always_valid(
        w in 2usize..7,
        h in 2usize..7,
        seed in 0u64..1000,
        pop_scale in 10.0f64..1000.0,
        use_min in any::<bool>(),
        use_max in any::<bool>(),
        use_avg in any::<bool>(),
        use_sum in any::<bool>(),
        use_count in any::<bool>(),
    ) {
        let n = w * h;
        // Deterministic pseudo-random attributes from the seed.
        let pop: Vec<f64> = (0..n)
            .map(|i| ((i as u64 * 2654435761 + seed) % 997) as f64 / 997.0 * pop_scale + 1.0)
            .collect();
        let emp: Vec<f64> = (0..n)
            .map(|i| ((i as u64 * 40503 + seed * 7) % 883) as f64 / 883.0 * pop_scale * 0.5 + 1.0)
            .collect();
        let instance = instance_from(w, h, pop, emp);

        let mut set = ConstraintSet::new();
        if use_min {
            set.push(Constraint::min("POP", f64::NEG_INFINITY, pop_scale * 0.8).unwrap());
        }
        if use_max {
            set.push(Constraint::max("EMP", pop_scale * 0.05, f64::INFINITY).unwrap());
        }
        if use_avg {
            set.push(Constraint::avg("POP", pop_scale * 0.2, pop_scale * 0.9).unwrap());
        }
        if use_sum {
            set.push(Constraint::sum("POP", pop_scale, f64::INFINITY).unwrap());
        }
        if use_count {
            set.push(Constraint::count(1.0, (n / 2).max(2) as f64).unwrap());
        }

        match solve(&instance, &set, &FactConfig::seeded(seed)) {
            Ok(report) => {
                prop_assert!(validate_solution(&instance, &set, &report.solution).is_ok());
                prop_assert!(report.solution.heterogeneity <= report.heterogeneity_before + 1e-9);
            }
            Err(EmpError::Infeasible { .. }) => {} // legitimately infeasible
            Err(other) => return Err(TestCaseError::fail(format!("unexpected error: {other}"))),
        }
    }

    /// The incremental dissimilarity statistic matches the brute-force sum
    /// under arbitrary insert/remove sequences.
    #[test]
    fn dissim_stat_matches_bruteforce(ops in prop::collection::vec((any::<bool>(), 0.0f64..100.0), 1..60)) {
        let mut stat = DissimStat::new();
        let mut values: Vec<f64> = Vec::new();
        for (insert, v) in ops {
            if insert || values.is_empty() {
                stat.insert(v);
                values.push(v);
            } else {
                let v = values.pop().unwrap();
                stat.remove(v);
            }
            let expected = brute_pairwise(&values);
            prop_assert!((stat.pairwise() - expected).abs() < 1e-6 * expected.max(1.0));
        }
    }

    /// Multiset min/max with hypothetical removal match a sorted-vec oracle.
    #[test]
    fn multiset_matches_oracle(values in prop::collection::vec(0.0f64..50.0, 1..40)) {
        let mut ms = Multiset::new();
        for &v in &values {
            ms.insert(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(ms.min(), sorted.first().copied());
        prop_assert_eq!(ms.max(), sorted.last().copied());
        // Hypothetical removal of each distinct value.
        for &v in &values {
            let mut rest = sorted.clone();
            let idx = rest.iter().position(|&x| x == v).unwrap();
            rest.remove(idx);
            prop_assert_eq!(ms.min_excluding(v), rest.first().copied());
            prop_assert_eq!(ms.max_excluding(v), rest.last().copied());
        }
    }

    /// Constraint display -> parse is the identity.
    #[test]
    fn constraint_display_parse_roundtrip(
        agg in 0usize..5,
        low in prop::option::of(-1000.0f64..1000.0),
        len in 0.0f64..500.0,
    ) {
        let aggregate = [Aggregate::Min, Aggregate::Max, Aggregate::Avg, Aggregate::Sum, Aggregate::Count][agg];
        let low_v = low.unwrap_or(f64::NEG_INFINITY);
        let high_v = if low.is_some() { low_v + len } else { f64::INFINITY };
        // Skip the fully unbounded case (printed as "unbounded", not parseable).
        prop_assume!(low.is_some() || high_v.is_finite());
        let c = Constraint::new(aggregate, "ATTR", low_v, high_v).unwrap();
        let text = c.to_string();
        let back = parse_constraint(&text).unwrap();
        prop_assert_eq!(back.aggregate, c.aggregate);
        prop_assert!((back.low - c.low).abs() < 1e-6 || back.low == c.low);
        prop_assert!((back.high - c.high).abs() < 1e-6 || back.high == c.high);
    }

    /// Feasibility filtering removes exactly the areas outside extrema
    /// bounds (paper §V-A cases MIN(b) / MAX(b)).
    #[test]
    fn feasibility_filters_exactly_out_of_bounds_areas(
        values in prop::collection::vec(0.0f64..100.0, 4..40),
        low in 0.0f64..40.0,
    ) {
        let n = values.len();
        let high = low + 30.0;
        prop_assume!(values.iter().any(|&v| v >= low && v <= high));
        let graph = ContiguityGraph::lattice(n, 1);
        let mut attrs = AttributeTable::new(n);
        attrs.push_column("S", values.clone()).unwrap();
        let instance = EmpInstance::new(graph, attrs, "S").unwrap();
        let set = ConstraintSet::new().with(Constraint::min("S", low, high).unwrap());
        let engine = emp_core::engine::ConstraintEngine::compile(&instance, &set).unwrap();
        let report = emp_core::feasibility::feasibility_phase(&engine);
        let expected: Vec<u32> = (0..n as u32)
            .filter(|&a| values[a as usize] < low)
            .collect();
        prop_assert_eq!(report.invalid_areas, expected);
        // Seeds are exactly the in-bounds areas.
        let expected_seeds: Vec<u32> = (0..n as u32)
            .filter(|&a| values[a as usize] >= low && values[a as usize] <= high)
            .collect();
        prop_assert_eq!(report.seeds, expected_seeds);
    }

    /// Merging two regions that satisfy an AVG constraint yields a region
    /// that satisfies it (the convexity property Substep 2.3 relies on).
    #[test]
    fn avg_convexity_under_merge(
        a in prop::collection::vec(10.0f64..90.0, 1..10),
        b in prop::collection::vec(10.0f64..90.0, 1..10),
    ) {
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (lo, hi) = (avg(&a).min(avg(&b)), avg(&a).max(avg(&b)));
        let mut merged = a.clone();
        merged.extend_from_slice(&b);
        let m = avg(&merged);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    /// Tabu search preserves p and never worsens heterogeneity.
    #[test]
    fn tabu_preserves_p_and_improves(seed in 0u64..200) {
        let n = 36;
        let pop: Vec<f64> = (0..n).map(|i| ((i as u64 * 131 + seed) % 97) as f64 + 1.0).collect();
        let emp: Vec<f64> = (0..n).map(|i| ((i as u64 * 37 + seed) % 53) as f64 + 1.0).collect();
        let instance = instance_from(6, 6, pop, emp);
        let set = ConstraintSet::new().with(Constraint::count(2.0, 12.0).unwrap());

        let no_ls = solve(&instance, &set, &FactConfig {
            local_search: false,
            ..FactConfig::seeded(seed)
        }).unwrap();
        let with_ls = solve(&instance, &set, &FactConfig::seeded(seed)).unwrap();
        prop_assert_eq!(no_ls.p(), with_ls.p());
        prop_assert!(with_ls.solution.heterogeneity <= no_ls.solution.heterogeneity + 1e-9);
    }
}
