//! End-to-end tests of the `emp` CLI binary: generate → info → feasibility →
//! solve, over both GeoJSON and shapefile inputs.

use std::path::PathBuf;
use std::process::{Command, Output};

fn emp_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_emp"))
}

fn run(args: &[&str]) -> Output {
    emp_bin().args(args).output().expect("spawn emp binary")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("emp-cli-tests");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

const QUERY: &str = "AVG(EMPLOYED) IN [1200, 3800] AND SUM(TOTALPOP) >= 15k";

#[test]
fn generate_info_solve_geojson() {
    let data = tmp("cli_a.geojson");
    let out = run(&[
        "generate",
        "--areas",
        "150",
        "--seed",
        "9",
        "--out",
        data.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(data.exists());

    let out = run(&["info", "--input", data.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("areas: 150"), "{text}");
    assert!(text.contains("TOTALPOP"));

    let labeled = tmp("cli_a_result.geojson");
    let out = run(&[
        "solve",
        "--input",
        data.to_str().unwrap(),
        "--query",
        QUERY,
        "--stats",
        "--out",
        labeled.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("p = "), "{text}");
    assert!(
        text.contains("region | size"),
        "--stats table missing: {text}"
    );
    // The labeled output carries REGION properties.
    let labeled_text = std::fs::read_to_string(&labeled).unwrap();
    assert!(labeled_text.contains("\"REGION\""));
}

#[test]
fn generate_and_solve_shapefile() {
    let base = tmp("cli_b");
    let out = run(&[
        "generate",
        "--areas",
        "120",
        "--islands",
        "2",
        "--out",
        base.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    for ext in ["shp", "shx", "dbf"] {
        assert!(base.with_extension(ext).exists(), "missing .{ext}");
    }
    let shp = base.with_extension("shp");
    let out = run(&["info", "--input", shp.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("connected components: 2"));

    let out = run(&[
        "solve",
        "--input",
        shp.to_str().unwrap(),
        "--query",
        "SUM(TOTALPOP) >= 20k",
        "--no-local-search",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn feasibility_reports_verdicts() {
    let data = tmp("cli_c.geojson");
    assert!(run(&[
        "generate",
        "--areas",
        "100",
        "--out",
        data.to_str().unwrap()
    ])
    .status
    .success());
    let out = run(&[
        "feasibility",
        "--input",
        data.to_str().unwrap(),
        "--query",
        "MIN(POP16UP) <= 3000",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("p upper bound"), "{text}");

    // Hard-infeasible query exits non-zero.
    let out = run(&[
        "feasibility",
        "--input",
        data.to_str().unwrap(),
        "--query",
        "SUM(TOTALPOP) >= 999999999",
    ]);
    assert!(!out.status.success());
}

#[test]
fn bad_usage_exits_with_error() {
    assert!(!run(&[]).status.success());
    assert!(!run(&["frobnicate"]).status.success());
    assert!(!run(&["solve", "--query", "SUM(X) >= 1"]).status.success()); // no input
    assert!(!run(&["solve", "--input"]).status.success()); // missing value
}
